"""Genuinely asynchronous cellular automata (the paper's Section 4 program).

The paper distinguishes *sequential* CA — one node updates at a time, but
against a global clock with instantaneous communication — from genuinely
*asynchronous* CA (ACA), where both computation and communication are
asynchronous: a node updates using its possibly-stale local **views** of its
neighbors, and state changes travel as messages with arbitrary finite
delays.  "No global clock" is modelled operationally: behaviour depends
only on the (adversarially choosable) partial order of update and delivery
events.

This package implements that model as a deterministic discrete-event
simulation, plus the constructions showing ACA *subsume* both classical CA
and SCA (replay either exactly) and exceed them (reach configurations
neither can).
"""

from repro.aca.events import Event, EventQueue
from repro.aca.channels import (
    DROPPED,
    AdversarialDelay,
    DelayModel,
    FixedDelay,
    LossyDelay,
    UniformRandomDelay,
    ZeroDelay,
)
from repro.aca.aca import AsyncCA, UpdateEvent
from repro.aca.subsumption import (
    aca_exceeds_interleavings,
    replay_parallel,
    replay_sequential,
)

__all__ = [
    "Event",
    "EventQueue",
    "DelayModel",
    "ZeroDelay",
    "FixedDelay",
    "UniformRandomDelay",
    "AdversarialDelay",
    "LossyDelay",
    "DROPPED",
    "AsyncCA",
    "UpdateEvent",
    "replay_parallel",
    "replay_sequential",
    "aca_exceeds_interleavings",
]
