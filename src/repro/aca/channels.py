"""Communication-delay models for asynchronous CA.

A delay model answers one question: when node ``src`` publishes a new state
at time ``t``, when does neighbor ``dst`` learn of it?  The paper frames
network delays as the essential ingredient that sequential CA abstract
away; these models make them explicit, from the degenerate ``ZeroDelay``
(which recovers SCA semantics) through random delays to fully adversarial
per-edge schedules.

Delays must be non-negative and finite; FIFO per channel is *not* assumed —
a later message may arrive before an earlier one if the model says so,
and the receiving node simply keeps the value carried by the latest
*arriving* message (last-writer-wins views).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

__all__ = [
    "DelayModel",
    "ZeroDelay",
    "FixedDelay",
    "UniformRandomDelay",
    "AdversarialDelay",
    "LossyDelay",
    "DROPPED",
]

#: sentinel delay meaning "this message is lost in transit"
DROPPED = float("inf")


class DelayModel(ABC):
    """Strategy object assigning a delay to each (src, dst, send-time)."""

    @abstractmethod
    def delay(self, src: int, dst: int, time: float) -> float:
        """Non-negative delay for a message sent on edge src->dst at ``time``."""

    def checked_delay(self, src: int, dst: int, time: float) -> float:
        """Delay with the model contract enforced.

        ``DROPPED`` (positive infinity) is the one permitted non-finite
        value: it marks a lost message (fault injection).
        """
        d = float(self.delay(src, dst, time))
        if d == DROPPED:
            return d
        if not np.isfinite(d) or d < 0:
            raise ValueError(
                f"delay model produced invalid delay {d} on edge {src}->{dst}"
            )
        return d


class ZeroDelay(DelayModel):
    """Instantaneous communication — the (weakly asynchronous) SCA regime."""

    def delay(self, src: int, dst: int, time: float) -> float:
        return 0.0


class FixedDelay(DelayModel):
    """Every message takes exactly ``d`` time units."""

    def __init__(self, d: float):
        if d < 0:
            raise ValueError(f"delay must be non-negative, got {d}")
        self.d = float(d)

    def delay(self, src: int, dst: int, time: float) -> float:
        return self.d


class UniformRandomDelay(DelayModel):
    """I.i.d. uniform delays in ``[low, high]`` (bounded asynchrony)."""

    def __init__(self, low: float, high: float, seed: int = 0):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self._rng = np.random.default_rng(seed)

    def delay(self, src: int, dst: int, time: float) -> float:
        return float(self._rng.uniform(self.low, self.high))


class LossyDelay(DelayModel):
    """Fault injection: each message is independently lost with probability
    ``drop_probability``; surviving messages take the inner model's delay.

    Lost announcements leave the receiver's view permanently stale — the
    failure mode the ACA model makes observable (see
    :meth:`repro.aca.aca.AsyncCA.view_staleness`).  Note that with losses
    the paper's convergence story can break in a specific, diagnosable
    way: the *states* may quiesce while the *views* disagree, so nodes
    stop updating for the wrong reason.
    """

    def __init__(self, inner: DelayModel, drop_probability: float, seed: int = 0):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1], got {drop_probability}"
            )
        self.inner = inner
        self.drop_probability = float(drop_probability)
        self._rng = np.random.default_rng(seed)
        self.dropped = 0

    def delay(self, src: int, dst: int, time: float) -> float:
        if self._rng.random() < self.drop_probability:
            self.dropped += 1
            return DROPPED
        return self.inner.delay(src, dst, time)


class AdversarialDelay(DelayModel):
    """Arbitrary per-edge, per-time delays chosen by a callback.

    The adversary is what "no global clock" buys: any causally consistent
    delivery pattern is realisable, which the subsumption constructions
    exploit.
    """

    def __init__(self, fn: Callable[[int, int, float], float]):
        self.fn = fn

    def delay(self, src: int, dst: int, time: float) -> float:
        return self.fn(src, dst, time)
