"""The asynchronous cellular automaton simulator.

Each node holds its own state and a *view* of each neighbor — the last
neighbor value whose announcement message has **arrived**.  The paper's
decomposition of a node update into finer elementary operations (Section 5:
fetch neighbor values, compute, publish the new state) is realised as:

1. an ``UpdateEvent(node)`` fires: the node applies its rule to its own
   current state and its current views (fetch + compute are local and
   atomic at the node);
2. if the state changed, one message per neighbor is queued, each arriving
   after its channel's delay (publish is asynchronous);
3. a delivery event updates the receiving node's view.

With zero delays and one update per instant this collapses to an SCA; with
all nodes updating at the same instants and sub-step delays it collapses to
the classical parallel CA — see :mod:`repro.aca.subsumption`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.aca.channels import DelayModel, ZeroDelay
from repro.aca.events import EventQueue
from repro.core.rules import UpdateRule
from repro.spaces.base import FiniteSpace
from repro.util.validation import check_node_index, check_state_vector

__all__ = ["AsyncCA", "UpdateEvent", "Delivery", "TraceEntry"]


@dataclass(frozen=True)
class UpdateEvent:
    """Payload: node ``node`` executes one local update."""

    node: int


@dataclass(frozen=True)
class Delivery:
    """Payload: ``dst`` learns that ``src`` is in state ``value``."""

    src: int
    dst: int
    value: int


@dataclass(frozen=True)
class TraceEntry:
    """One effective state change in the run."""

    time: float
    node: int
    old: int
    new: int


class AsyncCA:
    """An asynchronous CA over a finite space with explicit message delays.

    Parameters
    ----------
    space, rule, memory:
        As for :class:`repro.core.CellularAutomaton`.
    initial:
        Initial global configuration; every node's initial views are the
        true initial neighbor states (consistent start).
    delays:
        A :class:`repro.aca.channels.DelayModel`; default instantaneous.
    """

    def __init__(
        self,
        space: FiniteSpace,
        rule: UpdateRule,
        initial: np.ndarray,
        delays: DelayModel | None = None,
        memory: bool = True,
    ):
        self.space = space
        self.rule = rule
        self.memory = memory
        self.delays = delays if delays is not None else ZeroDelay()
        self.states = check_state_vector(initial, space.n)
        # views[i] maps each actual neighbor j -> last delivered value of j.
        self.views: list[dict[int, int]] = []
        for i in range(space.n):
            self.views.append(
                {
                    j: int(self.states[j])
                    for j in space.neighbors(i)
                    if j >= 0 and j != i
                }
            )
        self.queue = EventQueue()
        self.trace: list[TraceEntry] = []
        self.deliveries = 0
        self.dropped = 0

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.space.n

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.queue.now

    def snapshot(self) -> np.ndarray:
        """Copy of the current true global configuration."""
        return self.states.copy()

    # -- scheduling -------------------------------------------------------------

    def schedule_update(self, time: float, node: int) -> None:
        """Queue a local update of ``node`` at ``time``."""
        check_node_index(node, self.n)
        self.queue.push(time, UpdateEvent(node))

    def schedule_updates(self, events: Iterable[tuple[float, int]]) -> None:
        """Queue many ``(time, node)`` updates."""
        for time, node in events:
            self.schedule_update(time, node)

    def schedule_synchronous_rounds(
        self, times: Sequence[float], nodes: Sequence[int] | None = None
    ) -> None:
        """All (or the given) nodes update at each listed instant."""
        targets = range(self.n) if nodes is None else nodes
        for t in times:
            for node in targets:
                self.schedule_update(t, node)

    # -- execution ----------------------------------------------------------------

    def _local_inputs(self, node: int) -> list[int]:
        window = self.space.input_window(node, self.memory)
        inputs = []
        for j in window:
            if j == node:
                inputs.append(int(self.states[node]))
            elif j < 0:
                inputs.append(0)  # quiescent boundary
            else:
                inputs.append(self.views[node][j])
        return inputs

    def _fire_update(self, time: float, node: int) -> None:
        new = self.rule.evaluate(self._local_inputs(node))
        old = int(self.states[node])
        if new == old:
            return
        self.states[node] = new
        self.trace.append(TraceEntry(time, node, old, new))
        for j in self.space.neighbors(node):
            if j >= 0 and j != node:
                d = self.delays.checked_delay(node, j, time)
                if d == float("inf"):
                    self.dropped += 1  # lost in transit (fault injection)
                    continue
                self.queue.push(time + d, Delivery(node, j, new))

    def step_event(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not len(self.queue):
            return False
        ev = self.queue.pop()
        payload = ev.payload
        if isinstance(payload, UpdateEvent):
            self._fire_update(ev.time, payload.node)
        elif isinstance(payload, Delivery):
            self.views[payload.dst][payload.src] = payload.value
            self.deliveries += 1
        else:  # pragma: no cover - queue only ever holds these payloads
            raise TypeError(f"unknown event payload {payload!r}")
        return True

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the event queue; returns the number of events processed."""
        processed = 0
        while processed < max_events and self.step_event():
            processed += 1
        if len(self.queue):
            raise RuntimeError(
                f"event budget {max_events} exhausted with {len(self.queue)} pending"
            )
        return processed

    def run_until(self, time: float, max_events: int = 1_000_000) -> int:
        """Process all events with timestamp <= ``time``."""
        processed = 0
        while processed < max_events:
            nxt = self.queue.peek_time()
            if nxt is None or nxt > time:
                return processed
            self.step_event()
            processed += 1
        raise RuntimeError(f"event budget {max_events} exhausted")

    # -- view diagnostics -------------------------------------------------------------

    def view_staleness(self) -> int:
        """Number of (node, neighbor) views that differ from the true state.

        Zero staleness means every node's picture of its neighborhood is
        current — the regime in which ACA and SCA coincide.
        """
        stale = 0
        for i in range(self.n):
            for j, v in self.views[i].items():
                if v != int(self.states[j]):
                    stale += 1
        return stale
