"""Isomorphism of deterministic phase spaces (functional graphs).

The paper's Section 3.1 observes that for the two-node XOR automaton, "no
sequential CA with the same underlying cellular space and the same node
update rule can reproduce identical **or even isomorphic** computation"
as the parallel CA.  Making that checkable needs functional-graph
isomorphism, which — unlike general graph isomorphism — has an efficient
canonical form:

* every functional graph is a disjoint union of cycles with rooted trees
  ("rho" components) hanging off the cycle nodes;
* rooted trees canonicalise by the classic AHU encoding (sorted tuples of
  child encodings);
* each component canonicalises as the lexicographically least rotation of
  its cycle's sequence of tree encodings;
* the whole graph canonicalises as the sorted multiset of components.

Two deterministic phase spaces are isomorphic as dynamical systems
(conjugate up to state relabelling) iff their canonical forms are equal.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cycles import FunctionalGraph
from repro.core.phase_space import PhaseSpace

__all__ = [
    "canonical_form",
    "functional_graphs_isomorphic",
    "phase_spaces_isomorphic",
]


def _tree_encodings(fg: FunctionalGraph) -> list[tuple]:
    """AHU code of the transient tree rooted at every node.

    Node ``v``'s tree consists of all transient nodes whose forward orbit
    first meets the cycles at ``v``; children are the *predecessors* of
    ``v`` that are not themselves on a cycle.  Computed bottom-up along
    the peel order (children are always peeled before their parent edge's
    target is finalised).
    """
    size = fg.size
    children: list[list[int]] = [[] for _ in range(size)]
    on_cycle = fg.on_cycle
    for v in range(size):
        if not on_cycle[v]:
            children[int(fg.succ[v])].append(v)

    codes: list[tuple | None] = [None] * size

    def encode(v: int) -> tuple:
        # Iterative post-order to avoid recursion limits on deep tails.
        stack = [(v, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                codes[node] = tuple(
                    sorted(codes[c] for c in children[node])  # type: ignore[arg-type]
                )
            else:
                stack.append((node, True))
                for c in children[node]:
                    if codes[c] is None:
                        stack.append((c, False))
        return codes[v]  # type: ignore[return-value]

    return [encode(v) if codes[v] is None else codes[v] for v in range(size)]  # type: ignore[return-value,misc]


def _least_rotation(seq: tuple) -> tuple:
    """Lexicographically least rotation (Booth's algorithm would be O(n);
    the simple O(n^2) scan is fine at phase-space cycle lengths)."""
    n = len(seq)
    best = seq
    for k in range(1, n):
        rotated = seq[k:] + seq[:k]
        if rotated < best:
            best = rotated
    return best


def canonical_form(succ: np.ndarray) -> tuple:
    """Canonical invariant of a functional graph: equal iff isomorphic."""
    fg = FunctionalGraph(np.asarray(succ, dtype=np.int64))
    tree_codes = _tree_encodings(fg)
    components = []
    for cycle in fg.cycles:
        ring = tuple(tree_codes[v] for v in cycle)
        components.append((len(cycle), _least_rotation(ring)))
    return tuple(sorted(components))


def functional_graphs_isomorphic(a: np.ndarray, b: np.ndarray) -> bool:
    """Are two maps on finite sets conjugate (isomorphic as dynamics)?"""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size != b.size:
        return False
    return canonical_form(a) == canonical_form(b)


def phase_spaces_isomorphic(ps1: PhaseSpace, ps2: PhaseSpace) -> bool:
    """Are two deterministic phase spaces isomorphic dynamical systems?"""
    return functional_graphs_isomorphic(ps1.succ, ps2.succ)
