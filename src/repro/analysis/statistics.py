"""Phase-space summary statistics.

Aggregates the quantities the paper talks about qualitatively — how many
fixed points, how many proper cycles, how big the basins, how long the
transients — into one comparable record, so parallel/sequential contrasts
(like the paper's Fig. 1 discussion of the "richer" sequential space) can
be made numerically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace

__all__ = [
    "PhaseSpaceStats",
    "phase_space_stats",
    "nondet_stats",
    "Z95",
    "Z99",
    "wilson_interval",
    "StreamingMoments",
]

#: two-sided normal critical values (scipy.stats.norm.ppf(0.975) / (0.995))
Z95 = 1.959963984540054
Z99 = 2.5758293035489004


def wilson_interval(
    successes: int, trials: int, z: float = Z95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Unlike the Wald interval it stays inside ``[0, 1]`` and keeps honest
    coverage at extreme rates — including ``p_hat in {0, 1}``, which the
    paper's dichotomy makes the *common* case (Theorem 1: a sequential
    threshold sweep has fixed-point incidence exactly 1).
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"need 0 <= successes <= trials, got {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * np.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
    lo = float(max(0.0, centre - half))
    hi = float(min(1.0, centre + half))
    # At p_hat in {0, 1} the exact bound is the endpoint itself; snap it
    # so float rounding cannot exclude a ground truth of exactly 0 or 1.
    if successes == 0:
        lo = 0.0
    if successes == trials:
        hi = 1.0
    return (lo, hi)


@dataclass
class StreamingMoments:
    """Mergeable streaming mean/variance over integer observations.

    Accumulates exact integer power sums (Python ints — no overflow, no
    rounding), so ``merge`` is associative and commutative *bit-for-bit*:
    a split stream merged in any order yields the same floats as a single
    pass.  ``mean``/``variance`` are algebraically identical to Welford's
    online recurrences; the integer-sum form is what makes shard-parallel
    estimation deterministic.
    """

    count: int = 0
    total: int = 0
    total_sq: int = 0
    maximum: int = 0

    def add(self, value: int) -> None:
        """Observe one integer value."""
        value = int(value)
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another stream's sums into this one (associative)."""
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 below two observations)."""
        if self.count < 2:
            return 0.0
        num = self.count * self.total_sq - self.total * self.total
        return max(0, num) / (self.count * (self.count - 1))

    def ci(self, z: float = Z95) -> tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        if self.count == 0:
            return (0.0, 0.0)
        half = z * np.sqrt(self.variance / self.count)
        return (float(self.mean - half), float(self.mean + half))


@dataclass(frozen=True)
class PhaseSpaceStats:
    """Headline numbers of one deterministic phase space."""

    configurations: int
    fixed_points: int
    proper_cycles: int
    max_cycle_length: int
    cycle_configs: int
    transient_configs: int
    gardens_of_eden: int
    max_transient: int
    mean_basin_size: float
    largest_basin: int

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (JSON/CLI friendly)."""
        return asdict(self)


def phase_space_stats(ps: PhaseSpace) -> PhaseSpaceStats:
    """Compute :class:`PhaseSpaceStats` for a deterministic phase space."""
    lengths = ps.cycle_lengths()
    basins = ps.basin_sizes()
    return PhaseSpaceStats(
        configurations=ps.size,
        fixed_points=int(ps.fixed_points.size),
        proper_cycles=len(ps.proper_cycles),
        max_cycle_length=max(lengths) if lengths else 0,
        cycle_configs=int(ps.cycle_configs.size),
        transient_configs=int(ps.transient_configs.size),
        gardens_of_eden=int(ps.gardens_of_eden.size),
        max_transient=ps.max_transient(),
        mean_basin_size=float(np.mean(basins)) if basins.size else 0.0,
        largest_basin=int(basins.max()) if basins.size else 0,
    )


@dataclass(frozen=True)
class NondetStats:
    """Headline numbers of one sequential (nondeterministic) phase space."""

    configurations: int
    fixed_points: int
    pseudo_fixed_points: int
    has_proper_cycle: bool
    proper_cycle_components: int
    largest_cycle_component: int
    unreachable_configs: int
    change_edges: int

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (JSON/CLI friendly)."""
        return asdict(self)


def nondet_stats(nps: NondetPhaseSpace) -> NondetStats:
    """Compute :class:`NondetStats` for a sequential phase space."""
    comps = nps.proper_cycle_components()
    srcs, _, _ = nps._change_edges
    return NondetStats(
        configurations=nps.size,
        fixed_points=int(nps.fixed_points.size),
        pseudo_fixed_points=int(nps.pseudo_fixed_points.size),
        has_proper_cycle=nps.has_proper_cycle(),
        proper_cycle_components=len(comps),
        largest_cycle_component=max((len(c) for c in comps), default=0),
        unreachable_configs=int(nps.unreachable_configs().size),
        change_edges=int(srcs.size),
    )
