"""Phase-space summary statistics.

Aggregates the quantities the paper talks about qualitatively — how many
fixed points, how many proper cycles, how big the basins, how long the
transients — into one comparable record, so parallel/sequential contrasts
(like the paper's Fig. 1 discussion of the "richer" sequential space) can
be made numerically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace

__all__ = ["PhaseSpaceStats", "phase_space_stats", "nondet_stats"]


@dataclass(frozen=True)
class PhaseSpaceStats:
    """Headline numbers of one deterministic phase space."""

    configurations: int
    fixed_points: int
    proper_cycles: int
    max_cycle_length: int
    cycle_configs: int
    transient_configs: int
    gardens_of_eden: int
    max_transient: int
    mean_basin_size: float
    largest_basin: int

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (JSON/CLI friendly)."""
        return asdict(self)


def phase_space_stats(ps: PhaseSpace) -> PhaseSpaceStats:
    """Compute :class:`PhaseSpaceStats` for a deterministic phase space."""
    lengths = ps.cycle_lengths()
    basins = ps.basin_sizes()
    return PhaseSpaceStats(
        configurations=ps.size,
        fixed_points=int(ps.fixed_points.size),
        proper_cycles=len(ps.proper_cycles),
        max_cycle_length=max(lengths) if lengths else 0,
        cycle_configs=int(ps.cycle_configs.size),
        transient_configs=int(ps.transient_configs.size),
        gardens_of_eden=int(ps.gardens_of_eden.size),
        max_transient=ps.max_transient(),
        mean_basin_size=float(np.mean(basins)) if basins.size else 0.0,
        largest_basin=int(basins.max()) if basins.size else 0,
    )


@dataclass(frozen=True)
class NondetStats:
    """Headline numbers of one sequential (nondeterministic) phase space."""

    configurations: int
    fixed_points: int
    pseudo_fixed_points: int
    has_proper_cycle: bool
    proper_cycle_components: int
    largest_cycle_component: int
    unreachable_configs: int
    change_edges: int

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (JSON/CLI friendly)."""
        return asdict(self)


def nondet_stats(nps: NondetPhaseSpace) -> NondetStats:
    """Compute :class:`NondetStats` for a sequential phase space."""
    comps = nps.proper_cycle_components()
    srcs, _, _ = nps._change_edges
    return NondetStats(
        configurations=nps.size,
        fixed_points=int(nps.fixed_points.size),
        pseudo_fixed_points=int(nps.pseudo_fixed_points.size),
        has_proper_cycle=nps.has_proper_cycle(),
        proper_cycle_components=len(comps),
        largest_cycle_component=max((len(c) for c in comps), default=0),
        unreachable_configs=int(nps.unreachable_configs().size),
        change_edges=int(srcs.size),
    )
