"""Survey of all 256 elementary CA rules against the paper's dichotomy.

The paper contrasts two rule classes — monotone symmetric (threshold)
rules, whose SCA never cycle, and rules like XOR, whose SCA do.  This
module maps the *entire* elementary rule space (Wolfram rules 0-255 =
every with-memory radius-1 rule) onto that axis: for each rule it records
structural properties (monotone? symmetric? linear threshold? quiescent?)
and measured dynamics (parallel proper cycles? sequential proper cycles?)
over a range of ring sizes, giving the complete radius-1 picture of where
the interleaving semantics survives and where it fails.

Headline facts the survey establishes (experiment E21):

* every monotone *self-dependent* rule is sequentially cycle-free; among
  the 20 monotone rules only the two shifts (Wolfram 170 and 240) cycle;
* sequential cycle-freeness is strictly more common than monotonicity —
  plenty of non-monotone rules (e.g. rule 232's neighbors) also converge;
* parallel cycles are the norm, not the exception: most elementary rules
  oscillate on some small ring, which is exactly why the paper's
  *threshold* convergence results carry information.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from functools import lru_cache

from repro.core.automaton import CellularAutomaton
from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.core.rules import WolframRule
from repro.spaces.line import Ring

__all__ = [
    "RuleProfile",
    "survey_rule",
    "survey_all_rules",
    "survey_summary",
    "mirror_rule",
    "complement_rule",
    "equivalence_class",
    "elementary_equivalence_classes",
]


@dataclass(frozen=True)
class RuleProfile:
    """Structure and measured dynamics of one elementary rule."""

    number: int
    monotone: bool
    symmetric: bool
    linear_threshold: bool
    preserves_quiescence: bool
    self_dependent: bool
    parallel_max_period: int
    parallel_cycles_somewhere: bool
    sequential_cycles_somewhere: bool

    @property
    def is_paper_class(self) -> bool:
        """Monotone symmetric — the class of the paper's Theorem 1."""
        return self.monotone and self.symmetric


def _self_dependent(rule: WolframRule) -> bool:
    """Does the output ever depend on the centre (self) input?

    The centre cell is input 1 of our little-endian tables.
    """
    table = rule.function.table
    return any(
        table[code] != table[code ^ 0b010] for code in range(8)
    )


@lru_cache(maxsize=None)
def survey_rule(
    number: int,
    ring_sizes: tuple[int, ...] = (5, 6, 7, 8),
    backend: str | None = None,
) -> RuleProfile:
    """Full structural + dynamical profile of one elementary rule."""
    rule = WolframRule(number)
    func = rule.function
    parallel_max = 1
    parallel_cycles = False
    sequential_cycles = False
    for n in ring_sizes:
        ca = CellularAutomaton(
            Ring(n, radius=1), rule, memory=True, backend=backend
        )
        ps = PhaseSpace.from_automaton(ca)
        lengths = ps.cycle_lengths()
        parallel_max = max(parallel_max, max(lengths))
        parallel_cycles |= ps.has_proper_cycle()
        if not sequential_cycles:
            nps = NondetPhaseSpace.from_automaton(ca)
            sequential_cycles |= nps.has_proper_cycle()
    return RuleProfile(
        number=number,
        monotone=func.is_monotone(),
        symmetric=func.is_symmetric(),
        linear_threshold=func.is_linear_threshold(),
        preserves_quiescence=func.preserves_quiescence(),
        self_dependent=_self_dependent(rule),
        parallel_max_period=parallel_max,
        parallel_cycles_somewhere=parallel_cycles,
        sequential_cycles_somewhere=sequential_cycles,
    )


def survey_all_rules(
    ring_sizes: Iterable[int] = (5, 6, 7, 8),
    backend: str | None = None,
) -> list[RuleProfile]:
    """Profiles of all 256 elementary rules."""
    sizes = tuple(sorted(set(int(n) for n in ring_sizes)))
    return [survey_rule(k, sizes, backend) for k in range(256)]


def survey_summary(profiles: list[RuleProfile]) -> dict[str, object]:
    """Cross-tabulation of the survey against the paper's claims."""
    monotone = [p for p in profiles if p.monotone]
    paper_class = [p for p in profiles if p.is_paper_class]
    seq_quiet = [p for p in profiles if not p.sequential_cycles_somewhere]
    monotone_cyclers = sorted(
        p.number for p in monotone if p.sequential_cycles_somewhere
    )
    return {
        "rules": len(profiles),
        "monotone": len(monotone),
        "monotone_symmetric": len(paper_class),
        "linear_threshold": sum(1 for p in profiles if p.linear_threshold),
        "sequentially_cycle_free": len(seq_quiet),
        "parallel_cyclers": sum(
            1 for p in profiles if p.parallel_cycles_somewhere
        ),
        "monotone_sequential_cyclers": monotone_cyclers,
        # Threshold representability (arbitrary weights) is neither
        # necessary nor sufficient for sequential convergence — the energy
        # argument needs SYMMETRIC weights with positive diagonal, a
        # different slice of the rule space.
        "cycle_free_and_threshold": sum(
            1 for p in seq_quiet if p.linear_threshold
        ),
        "cycle_free_not_threshold": sum(
            1 for p in seq_quiet if not p.linear_threshold
        ),
        "threshold_but_cycling": sum(
            1
            for p in profiles
            if p.linear_threshold and p.sequential_cycles_somewhere
        ),
        # Theorem 1 over the whole rule space: no monotone symmetric rule
        # may ever cycle sequentially.
        "theorem1_violations": sorted(
            p.number for p in paper_class if p.sequential_cycles_somewhere
        ),
        # The E18 boundary, in Wolfram numbering: 170 = right-projection
        # (x_{i+1}), 240 = left-projection (x_{i-1}).
        "expected_monotone_cyclers": [170, 240],
    }


# -- the classical 88 equivalence classes -------------------------------------------


def mirror_rule(number: int) -> int:
    """The rule computing the mirrored dynamics: swap left and right inputs.

    Conjugating a ring CA by the reflection i -> -i replaces rule k by
    mirror_rule(k); dynamical properties are invariant.
    """
    if not 0 <= number <= 255:
        raise ValueError(f"rule number out of range: {number}")
    out = 0
    for left in range(2):
        for centre in range(2):
            for right in range(2):
                if (number >> (4 * left + 2 * centre + right)) & 1:
                    out |= 1 << (4 * right + 2 * centre + left)
    return out


def complement_rule(number: int) -> int:
    """The rule conjugate under global complementation x -> 1 - x.

    F_c(x) = NOT F_k(NOT x): the table is negated and read at negated
    inputs.  Dynamics are again invariant (phase spaces are conjugate by
    the complement involution).
    """
    if not 0 <= number <= 255:
        raise ValueError(f"rule number out of range: {number}")
    out = 0
    for idx in range(8):
        if not (number >> (7 - idx)) & 1:
            out |= 1 << idx
    return out


def equivalence_class(number: int) -> tuple[int, ...]:
    """The orbit of a rule under mirror and complement (size 1, 2, or 4)."""
    m = mirror_rule(number)
    c = complement_rule(number)
    mc = mirror_rule(c)
    return tuple(sorted({number, m, c, mc}))


def elementary_equivalence_classes() -> list[tuple[int, ...]]:
    """All equivalence classes of the 256 elementary rules.

    The classical count is 88; dynamical invariants (cycle structure,
    transient depths) are constant on each class, which
    ``test_elementary.py`` verifies against the survey.
    """
    seen: set[int] = set()
    classes: list[tuple[int, ...]] = []
    for k in range(256):
        if k in seen:
            continue
        cls = equivalence_class(k)
        seen.update(cls)
        classes.append(cls)
    return classes
