"""Exact GF(2) linear algebra for additive (XOR-family) rules.

The paper's contrast class — XOR — is *linear over GF(2)*: the global map
is ``F(x) = A x (mod 2)`` for a 0/1 matrix ``A``.  Linearity turns
phase-space questions into rank computations, giving exact predictions
that cross-validate the generic machinery:

* image size = ``2**rank(A)``, so Gardens of Eden number
  ``2**n - 2**rank(A)``;
* every non-Garden configuration has exactly ``2**(n - rank(A))``
  preimages (the kernel's cosets), so in-degrees are 0 or that constant;
* fixed points are the kernel of ``A + I``: exactly ``2**dim ker(A+I)``;
* the map is a bijection (no Gardens at all) iff ``A`` is invertible.

`check_linear_structure` verifies all four predictions against the
exhaustively-built phase space — a strong independent oracle for the
engine on the non-threshold side of the paper's dichotomy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.phase_space import PhaseSpace

__all__ = [
    "is_linear_ca",
    "transition_matrix_gf2",
    "gf2_rank",
    "LinearStructure",
    "check_linear_structure",
]


def transition_matrix_gf2(ca: CellularAutomaton) -> np.ndarray:
    """The matrix ``A`` with ``F(x) = A x (mod 2)``, assuming linearity.

    Column ``j`` is ``F(e_j)`` — correct exactly when the rule is additive
    and quiescent-preserving; verify with :func:`is_linear_ca` first.
    """
    n = ca.n
    cols = []
    for j in range(n):
        basis = np.zeros(n, dtype=np.uint8)
        basis[j] = 1
        cols.append(ca.step(basis))
    return np.stack(cols, axis=1).astype(np.uint8)


def is_linear_ca(ca: CellularAutomaton, trials: int = 32, seed: int = 0) -> bool:
    """Is the global map additive: ``F(x ^ y) = F(x) ^ F(y)`` and ``F(0)=0``?

    Checked on random pairs (exact for ``trials >= 2**n``; a randomized
    but extremely reliable test otherwise — a non-linear map fails a
    random additivity check with probability >= 1/2 per trial).
    """
    n = ca.n
    zero = np.zeros(n, dtype=np.uint8)
    if ca.step(zero).any():
        return False
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        x = rng.integers(0, 2, n).astype(np.uint8)
        y = rng.integers(0, 2, n).astype(np.uint8)
        if not np.array_equal(ca.step(x ^ y), ca.step(x) ^ ca.step(y)):
            return False
    return True


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a 0/1 matrix over GF(2) (in-place row reduction on a copy)."""
    m = (np.array(matrix, dtype=np.uint8, copy=True) & 1)
    rows, cols = m.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if m[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        eliminate = np.flatnonzero(m[:, col])
        eliminate = eliminate[eliminate != rank]
        m[eliminate] ^= m[rank]
        rank += 1
        if rank == rows:
            break
    return rank


@dataclass(frozen=True)
class LinearStructure:
    """Algebraic predictions vs. exhaustive measurements for a linear CA."""

    n: int
    rank: int
    predicted_gardens: int
    measured_gardens: int
    predicted_in_degree: int
    measured_in_degrees: tuple[int, ...]
    predicted_fixed_points: int
    measured_fixed_points: int

    @property
    def consistent(self) -> bool:
        """All algebraic predictions match the exhaustive phase space."""
        return (
            self.predicted_gardens == self.measured_gardens
            and self.predicted_fixed_points == self.measured_fixed_points
            and set(self.measured_in_degrees) <= {0, self.predicted_in_degree}
        )


def check_linear_structure(ca: CellularAutomaton) -> LinearStructure:
    """Compare GF(2) predictions against the exhaustive phase space.

    Raises ``ValueError`` if the automaton is not linear.
    """
    if not is_linear_ca(ca):
        raise ValueError(f"{ca.describe()} is not GF(2)-linear")
    n = ca.n
    a = transition_matrix_gf2(ca)
    rank = gf2_rank(a)
    a_plus_i = (a ^ np.eye(n, dtype=np.uint8))
    fp_dim = n - gf2_rank(a_plus_i)

    ps = PhaseSpace.from_automaton(ca)
    in_degrees = tuple(sorted(set(ps.graph.in_degrees.tolist())))
    return LinearStructure(
        n=n,
        rank=rank,
        predicted_gardens=(1 << n) - (1 << rank),
        measured_gardens=int(ps.gardens_of_eden.size),
        predicted_in_degree=1 << (n - rank),
        measured_in_degrees=in_degrees,
        predicted_fixed_points=1 << fp_dim,
        measured_fixed_points=int(ps.fixed_points.size),
    )
