"""Ring symmetries: equivariance and orbit counting.

A homogeneous rule on a ring commutes with the ring's dihedral symmetry
group (rotations and, for mirror-symmetric windows, reflections).  This
module verifies the equivariance — a strong end-to-end test of the whole
engine — and quotients phase-space features by the group: the paper's
"two-cycle" is then literally *one* object (a single symmetry class), and
fixed-point counts collapse to necklace counts.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.util.bitops import reverse_bits, rotate_bits

__all__ = [
    "rotate_config",
    "reflect_config",
    "canonical_code",
    "symmetry_classes",
    "check_translation_equivariance",
    "check_reflection_equivariance",
]


def rotate_config(code: int, n: int, shift: int) -> int:
    """Rotate a packed ring configuration by ``shift`` positions."""
    return rotate_bits(code, n, shift)


def reflect_config(code: int, n: int) -> int:
    """Mirror a packed ring configuration."""
    return reverse_bits(code, n)


def canonical_code(code: int, n: int, reflections: bool = True) -> int:
    """Least code in the dihedral (or cyclic) orbit of ``code``."""
    best = code
    for shift in range(n):
        r = rotate_bits(code, n, shift)
        best = min(best, r)
        if reflections:
            best = min(best, reverse_bits(r, n))
    return best


def symmetry_classes(
    codes: Iterable[int], n: int, reflections: bool = True
) -> dict[int, list[int]]:
    """Group packed configurations by dihedral/cyclic symmetry class.

    Keys are canonical representatives; values the class members found in
    ``codes``.
    """
    out: dict[int, list[int]] = {}
    for code in codes:
        out.setdefault(canonical_code(int(code), n, reflections), []).append(
            int(code)
        )
    return out


def check_translation_equivariance(
    ca: CellularAutomaton, exhaustive_limit: int = 14, samples: int = 64,
    seed: int = 0,
) -> bool:
    """Does the global map commute with rotation?  (It must, on a ring.)

    Exhaustive for small n, sampled above ``exhaustive_limit``.  A failure
    would indicate an engine bug (window construction, packing, or rule
    application), which is why the property tests run this over random
    rules.
    """
    n = ca.n
    if n <= exhaustive_limit:
        succ = ca.step_all()
        codes = np.arange(1 << n)
        for shift in range(1, n):
            for code in codes:
                rotated = rotate_bits(int(code), n, shift)
                if int(succ[rotated]) != rotate_bits(int(succ[code]), n, shift):
                    return False
        return True
    rng = np.random.default_rng(seed)
    for _ in range(samples):
        state = rng.integers(0, 2, n).astype(np.uint8)
        shift = int(rng.integers(1, n))
        direct = ca.step(np.roll(state, shift))
        rotated = np.roll(ca.step(state), shift)
        if not np.array_equal(direct, rotated):
            return False
    return True


def check_reflection_equivariance(
    ca: CellularAutomaton, samples: int = 64, seed: int = 0
) -> bool:
    """Does the global map commute with mirroring?

    True exactly when the local rule is mirror-symmetric in its window
    (all totalistic rules are; shifts are not).
    """
    rng = np.random.default_rng(seed)
    n = ca.n
    for _ in range(samples):
        state = rng.integers(0, 2, n).astype(np.uint8)
        if not np.array_equal(ca.step(state[::-1].copy())[::-1], ca.step(state)):
            return False
    return True
