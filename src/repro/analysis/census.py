"""Phase-space censuses across system sizes.

The paper's companion work ([19], "Complete characterization of phase
spaces of certain types of threshold cellular automata") counts the
structural features of threshold phase spaces.  This module reproduces
the census programme for MAJORITY rings:

* **fixed points** — exactly the configurations with no isolated run
  (every maximal block of equal states has length >= 2), whose count
  satisfies the exact linear recurrence
  ``a(n) = 2 a(n-1) - a(n-2) + a(n-4)`` (discovered and verified here);
* **Gardens of Eden** — unreachable configurations, whose fraction tends
  to 1: almost every configuration is transient *input*, never output;
* **cycle configurations** — exactly two per even ring (the alternating
  pair), zero otherwise.

:func:`find_linear_recurrence` fits minimal-order integer recurrences
exactly (Fraction arithmetic, no floating point), so a reported recurrence
is a proof for the measured range, not an approximation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule
from repro.spaces.line import Ring
from repro.util.bitops import int_to_bits

__all__ = [
    "run_lengths_cyclic",
    "has_isolated_run",
    "find_linear_recurrence",
    "CensusRow",
    "majority_ring_census",
]


def run_lengths_cyclic(state: np.ndarray) -> list[int]:
    """Lengths of the maximal constant runs of a cyclic 0/1 string.

    The all-equal string is one run of length ``n``.
    """
    state = np.asarray(state).ravel()
    n = state.size
    if n == 0:
        raise ValueError("empty configuration has no runs")
    if np.all(state == state[0]):
        return [n]
    # Rotate so position 0 starts a run, then split on changes.
    start = 0
    while state[(start - 1) % n] == state[start]:
        start += 1
    rotated = np.roll(state, -start)
    changes = np.flatnonzero(np.diff(rotated)) + 1
    bounds = np.concatenate([[0], changes, [n]])
    return np.diff(bounds).astype(int).tolist()


def has_isolated_run(state: np.ndarray) -> bool:
    """True iff some maximal run has length 1 (an 'isolated' cell)."""
    return min(run_lengths_cyclic(state)) == 1


def find_linear_recurrence(
    seq: Sequence[int], max_order: int = 6
) -> tuple[int, tuple[Fraction, ...]] | None:
    """The minimal-order exact linear recurrence satisfied by ``seq``.

    Returns ``(order, coefficients)`` with
    ``seq[i] = sum(coefficients[k] * seq[i-1-k])``, verified exactly over
    the whole sequence, or ``None`` if no recurrence of order
    ``<= max_order`` fits.  Exact rational Gaussian elimination — a
    returned recurrence genuinely holds for every supplied term.
    """
    values = [Fraction(int(v)) for v in seq]
    for order in range(1, max_order + 1):
        if len(values) < 2 * order:
            break  # need enough terms both to fit and to verify
        rows = [
            [values[i - k] for k in range(1, order + 1)] + [values[i]]
            for i in range(order, 2 * order)
        ]
        coeffs = _solve_exact(rows, order)
        if coeffs is None:
            continue
        if all(
            values[i] == sum(c * values[i - 1 - k] for k, c in enumerate(coeffs))
            for i in range(order, len(values))
        ):
            return order, tuple(coeffs)
    return None


def _solve_exact(rows: list[list[Fraction]], order: int) -> list[Fraction] | None:
    """Gaussian elimination over the rationals; None if singular."""
    mat = [row[:] for row in rows]
    for col in range(order):
        pivot = next(
            (r for r in range(col, len(mat)) if mat[r][col] != 0), None
        )
        if pivot is None:
            return None
        mat[col], mat[pivot] = mat[pivot], mat[col]
        inv = 1 / mat[col][col]
        mat[col] = [x * inv for x in mat[col]]
        for r in range(len(mat)):
            if r != col and mat[r][col] != 0:
                factor = mat[r][col]
                mat[r] = [a - factor * b for a, b in zip(mat[r], mat[col])]
    return [mat[k][order] for k in range(order)]


@dataclass(frozen=True)
class CensusRow:
    """Phase-space census of one MAJORITY ring."""

    n: int
    configurations: int
    fixed_points: int
    cycle_configs: int
    gardens_of_eden: int
    max_transient: int

    @property
    def garden_fraction(self) -> float:
        """Fraction of configurations that are unreachable."""
        return self.gardens_of_eden / self.configurations


def majority_ring_census(
    sizes: Iterable[int],
    backend: str | None = None,
    workers: int | None = None,
) -> list[CensusRow]:
    """Exhaustive census of MAJORITY-with-memory rings.

    Also asserts the structural characterisation of fixed points (no
    isolated run) configuration by configuration — a census row is only
    produced if the characterisation holds exactly.  ``backend`` /
    ``workers`` select the sweep backend (see :mod:`repro.perf`).
    """
    rows = []
    for n in sorted(set(int(m) for m in sizes)):
        ca = CellularAutomaton(
            Ring(n), MajorityRule(), memory=True, backend=backend,
            workers=workers,
        )
        ps = PhaseSpace.from_automaton(ca)
        fps = set(ps.fixed_points.tolist())
        for code in range(ps.size):
            is_fp = code in fps
            no_isolated = not has_isolated_run(int_to_bits(code, n))
            if is_fp != no_isolated:
                raise AssertionError(
                    f"fixed-point characterisation fails at n={n}, "
                    f"config {code}: fp={is_fp}, no_isolated={no_isolated}"
                )
        rows.append(
            CensusRow(
                n=n,
                configurations=ps.size,
                fixed_points=len(fps),
                cycle_configs=int(ps.cycle_configs.size),
                gardens_of_eden=int(ps.gardens_of_eden.size),
                max_transient=ps.max_transient(),
            )
        )
    return rows
