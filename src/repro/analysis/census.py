"""Phase-space censuses across system sizes.

The paper's companion work ([19], "Complete characterization of phase
spaces of certain types of threshold cellular automata") counts the
structural features of threshold phase spaces.  This module reproduces
the census programme for MAJORITY rings:

* **fixed points** — exactly the configurations with no isolated run
  (every maximal block of equal states has length >= 2), whose count
  satisfies the exact linear recurrence
  ``a(n) = 2 a(n-1) - a(n-2) + a(n-4)`` (discovered and verified here);
* **Gardens of Eden** — unreachable configurations, whose fraction tends
  to 1: almost every configuration is transient *input*, never output;
* **cycle configurations** — exactly two per even ring (the alternating
  pair), zero otherwise.

:func:`find_linear_recurrence` fits minimal-order integer recurrences
exactly (Fraction arithmetic, no floating point), so a reported recurrence
is a proof for the measured range, not an approximation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.budget import Budget, BudgetExceeded, Partial, resolve_budget
from repro.core.phase_space import PhaseSpace
from repro.core.rules import MajorityRule
from repro.obs import span
from repro.perf.base import CHUNK as _CHUNK
from repro.perf.base import MAX_ATTRACTOR_N
from repro.spaces.line import Ring
from repro.util.bitops import int_to_bits

__all__ = [
    "run_lengths_cyclic",
    "has_isolated_run",
    "find_linear_recurrence",
    "CensusRow",
    "majority_ring_census",
    "AttractorCensusRow",
    "build_attractor_census",
    "attractor_ring_census",
]



def run_lengths_cyclic(state: np.ndarray) -> list[int]:
    """Lengths of the maximal constant runs of a cyclic 0/1 string.

    The all-equal string is one run of length ``n``.
    """
    state = np.asarray(state).ravel()
    n = state.size
    if n == 0:
        raise ValueError("empty configuration has no runs")
    if np.all(state == state[0]):
        return [n]
    # Rotate so position 0 starts a run, then split on changes.
    start = 0
    while state[(start - 1) % n] == state[start]:
        start += 1
    rotated = np.roll(state, -start)
    changes = np.flatnonzero(np.diff(rotated)) + 1
    bounds = np.concatenate([[0], changes, [n]])
    return np.diff(bounds).astype(int).tolist()


def has_isolated_run(state: np.ndarray) -> bool:
    """True iff some maximal run has length 1 (an 'isolated' cell)."""
    return min(run_lengths_cyclic(state)) == 1


def find_linear_recurrence(
    seq: Sequence[int], max_order: int = 6
) -> tuple[int, tuple[Fraction, ...]] | None:
    """The minimal-order exact linear recurrence satisfied by ``seq``.

    Returns ``(order, coefficients)`` with
    ``seq[i] = sum(coefficients[k] * seq[i-1-k])``, verified exactly over
    the whole sequence, or ``None`` if no recurrence of order
    ``<= max_order`` fits.  Exact rational Gaussian elimination — a
    returned recurrence genuinely holds for every supplied term.
    """
    values = [Fraction(int(v)) for v in seq]
    for order in range(1, max_order + 1):
        if len(values) < 2 * order:
            break  # need enough terms both to fit and to verify
        rows = [
            [values[i - k] for k in range(1, order + 1)] + [values[i]]
            for i in range(order, 2 * order)
        ]
        coeffs = _solve_exact(rows, order)
        if coeffs is None:
            continue
        if all(
            values[i] == sum(c * values[i - 1 - k] for k, c in enumerate(coeffs))
            for i in range(order, len(values))
        ):
            return order, tuple(coeffs)
    return None


def _solve_exact(rows: list[list[Fraction]], order: int) -> list[Fraction] | None:
    """Gaussian elimination over the rationals; None if singular."""
    mat = [row[:] for row in rows]
    for col in range(order):
        pivot = next(
            (r for r in range(col, len(mat)) if mat[r][col] != 0), None
        )
        if pivot is None:
            return None
        mat[col], mat[pivot] = mat[pivot], mat[col]
        inv = 1 / mat[col][col]
        mat[col] = [x * inv for x in mat[col]]
        for r in range(len(mat)):
            if r != col and mat[r][col] != 0:
                factor = mat[r][col]
                mat[r] = [a - factor * b for a, b in zip(mat[r], mat[col])]
    return [mat[k][order] for k in range(order)]


@dataclass(frozen=True)
class CensusRow:
    """Phase-space census of one MAJORITY ring."""

    n: int
    configurations: int
    fixed_points: int
    cycle_configs: int
    gardens_of_eden: int
    max_transient: int

    @property
    def garden_fraction(self) -> float:
        """Fraction of configurations that are unreachable."""
        return self.gardens_of_eden / self.configurations


@dataclass(frozen=True)
class AttractorCensusRow:
    """Attractor census of one automaton, computed without a phase space.

    The attractor-direct counterpart of :class:`CensusRow`: everything
    Brent classification over symmetry-orbit representatives can answer
    exactly — which excludes the reachability columns (Gardens of Eden,
    transient depths) that genuinely need the materialized global map.
    """

    n: int
    configurations: int
    orbit_reps: int
    fixed_points: int
    cycle_configs: int
    two_cycle_configs: int
    max_cycle_len: int
    quotient: str

    def summary(self) -> dict[str, int | str]:
        return {
            "configurations": self.configurations,
            "orbit_reps": self.orbit_reps,
            "fixed_points": self.fixed_points,
            "cycle_configs": self.cycle_configs,
            "two_cycle_configs": self.two_cycle_configs,
            "max_cycle_len": self.max_cycle_len,
            "quotient": self.quotient,
        }


def build_attractor_census(
    ca: CellularAutomaton,
    budget: Budget | None = None,
    frontier: dict[str, object] | None = None,
    kernel=None,
) -> Partial[AttractorCensusRow]:
    """Governed attractor-direct census: exact, or truncated + resumable.

    Scans the configuration-code range in bounded chunks through an
    :class:`~repro.perf.attractor.AttractorKernel` — no ``2**n`` array is
    ever held, so the budget charges only the bounded trajectory-lane
    scratch (``kernel.transient_bytes()``) per chunk rather than bytes
    per stored state; the state ledger still counts scanned codes so
    ``--budget-states`` and progress totals keep their meaning.

    On a trip the :class:`~repro.core.budget.Partial` carries a tiny
    pure-JSON frontier (the next unscanned code plus the counts folded so
    far); resuming completes the census byte-identically because counts
    of disjoint code ranges merge exactly
    (:func:`~repro.perf.attractor.merge_counts`).
    """
    from repro.perf.attractor import (
        ATTRACTOR_CHUNK,
        AttractorKernel,
        K_COUNTS,
        merge_counts,
        zero_counts,
    )

    budget = resolve_budget(budget)
    n = ca.n
    if n > MAX_ATTRACTOR_N:
        raise ValueError(
            f"attractor census over 2**{n} configurations is too large"
        )
    if kernel is None:
        kernel = AttractorKernel(ca)
    total = 1 << n
    from repro.harness import faults

    counts = zero_counts()
    start = 0
    if frontier is not None:
        if (
            frontier.get("kind") != "attractor_census"
            or int(frontier.get("n", -1)) != n
        ):
            raise ValueError(
                f"frontier is not an attractor-census frontier for n={n}: "
                f"{ {k: frontier[k] for k in ('kind', 'n') if k in frontier} }"
            )
        start = int(frontier["next_lo"])
        prior = np.asarray(frontier.get("counts", []), dtype=np.int64)
        if prior.size != K_COUNTS:
            raise ValueError(
                f"attractor-census frontier has {prior.size} count slots, "
                f"expected {K_COUNTS}"
            )
        counts[:] = prior
    transient = kernel.transient_bytes()
    # Small spaces keep the sweeps' fine chunk (honest budget-trip
    # granularity); big spaces use ranges wide enough to fill lane blocks.
    step = _CHUNK if total <= ATTRACTOR_CHUNK else ATTRACTOR_CHUNK

    def _frontier(next_lo: int) -> dict[str, object]:
        return {
            "kind": "attractor_census",
            "n": n,
            "automaton": ca.describe(),
            "total": total,
            "next_lo": next_lo,
            "counts": [int(v) for v in counts],
        }

    def _row() -> AttractorCensusRow:
        return AttractorCensusRow(
            n=n,
            configurations=int(counts[2]),
            orbit_reps=int(counts[1]),
            fixed_points=int(counts[3]),
            cycle_configs=int(counts[4]),
            two_cycle_configs=int(counts[5]),
            max_cycle_len=int(counts[6]),
            quotient=kernel.quotient.mode,
        )

    def _stats() -> dict[str, int]:
        return {
            "orbit_reps_so_far": int(counts[1]),
            "fixed_points_so_far": int(counts[3]),
        }

    with span(
        "census.attractor",
        n=n,
        configs=total,
        quotient=kernel.quotient.mode,
        budget=budget.describe(),
    ) as census_span:
        backend = ca.backend
        if backend.is_sharded:
            next_lo, reason = backend.governed_sweep(
                counts,
                budget,
                start=start,
                per_state=0,
                mode="attractor",
                kernel=kernel,
            )
            if reason is not None:
                census_span.set(truncated=reason, explored=next_lo)
                return Partial.truncated(
                    reason,
                    explored=next_lo,
                    total=total,
                    stats=_stats(),
                    frontier=_frontier(next_lo),
                )
        else:
            lo = start
            while lo < total:
                hi = min(lo + step, total)
                reason = budget.over(
                    pending_bytes=transient, pending_states=hi - lo
                )
                if reason is not None:
                    census_span.set(truncated=reason, explored=lo)
                    return Partial.truncated(
                        reason,
                        explored=lo,
                        total=total,
                        stats=_stats(),
                        frontier=_frontier(lo),
                    )
                faults.inject("census.chunk")
                merge_counts(counts, kernel.census_range(lo, hi))
                budget.charge(states=hi - lo, bytes_=0)
                lo = hi
        if int(counts[2]) != total:
            # The coverage identity (orbit weights sum to 2**n) failed —
            # a quotient bug; never report a wrong census as exact.
            census_span.set(coverage=int(counts[2]))
            return Partial.truncated(
                f"quotient covered {int(counts[2])} of {total} "
                f"configurations",
                explored=total,
                total=total,
                stats=_stats(),
                frontier=None,
            )
        census_span.set(
            fixed_points=int(counts[3]), orbit_reps=int(counts[1])
        )
        return Partial.done(
            _row(), explored=total, total=total, stats=_stats()
        )


def attractor_ring_census(
    sizes: Iterable[int],
    backend: str | None = None,
    workers: int | None = None,
) -> list[AttractorCensusRow]:
    """Attractor-direct census of MAJORITY-with-memory rings.

    The same automata as :func:`majority_ring_census`, classified without
    materializing phase spaces — which is what lets the exact census
    climb past ``MAX_SWEEP_N``.  Raises
    :class:`~repro.core.budget.BudgetExceeded` on truncation (use
    :func:`build_attractor_census` for the resumable form).
    """
    rows = []
    for n in sorted(set(int(m) for m in sizes)):
        ca = CellularAutomaton(
            Ring(n), MajorityRule(), memory=True, backend=backend,
            workers=workers,
        )
        partial = build_attractor_census(ca)
        if not partial.complete:
            raise BudgetExceeded(partial.reason, partial=partial)
        rows.append(partial.value)
    return rows


def majority_ring_census(
    sizes: Iterable[int],
    backend: str | None = None,
    workers: int | None = None,
) -> list[CensusRow]:
    """Exhaustive census of MAJORITY-with-memory rings.

    Also asserts the structural characterisation of fixed points (no
    isolated run) configuration by configuration — a census row is only
    produced if the characterisation holds exactly.  ``backend`` /
    ``workers`` select the sweep backend (see :mod:`repro.perf`).
    """
    rows = []
    for n in sorted(set(int(m) for m in sizes)):
        ca = CellularAutomaton(
            Ring(n), MajorityRule(), memory=True, backend=backend,
            workers=workers,
        )
        ps = PhaseSpace.from_automaton(ca)
        fps = set(ps.fixed_points.tolist())
        for code in range(ps.size):
            is_fp = code in fps
            no_isolated = not has_isolated_run(int_to_bits(code, n))
            if is_fp != no_isolated:
                raise AssertionError(
                    f"fixed-point characterisation fails at n={n}, "
                    f"config {code}: fp={is_fp}, no_isolated={no_isolated}"
                )
        rows.append(
            CensusRow(
                n=n,
                configurations=ps.size,
                fixed_points=len(fps),
                cycle_configs=int(ps.cycle_configs.size),
                gardens_of_eden=int(ps.gardens_of_eden.size),
                max_transient=ps.max_transient(),
            )
        )
    return rows
