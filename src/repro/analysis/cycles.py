"""Cycle structure of functional graphs and general digraphs.

A deterministic phase space is a *functional graph*: every configuration has
exactly one successor, so the graph decomposes into disjoint cycles with
trees hanging off them ("rho" shapes).  :class:`FunctionalGraph` extracts
the full decomposition — cycle membership, attractor labels, distance to the
attractor, basins — with vectorized in-degree peeling rather than per-node
graph traversal.

For the nondeterministic sequential phase spaces we need strongly connected
components of a sparse digraph; :func:`strongly_connected_sizes` wraps
SciPy's compiled Tarjan implementation.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

__all__ = [
    "FunctionalGraph",
    "cycle_length_counts",
    "strongly_connected_sizes",
    "scc_labels",
    "scc_labels_python",
]

#: loop iterations between budget checks in the Python decomposition loops
#: (a check is a few attribute reads; 2**16 keeps the overhead invisible
#: while bounding cancellation latency to well under a second).
_CHECK_EVERY = 1 << 16


class FunctionalGraph:
    """Analysis of a map ``succ: {0..N-1} -> {0..N-1}`` given as an array.

    An optional :class:`~repro.core.budget.Budget` makes the O(N) Python
    decomposition loops cooperative: they poll the budget every
    ``2**16`` iterations and raise
    :class:`~repro.core.budget.BudgetExceeded` instead of running
    unbounded when the deadline passes or the token is cancelled.
    """

    def __init__(self, succ: np.ndarray, budget=None):
        succ = np.asarray(succ, dtype=np.int64).ravel()
        if succ.size == 0:
            raise ValueError("functional graph must have at least one node")
        if succ.min() < 0 or succ.max() >= succ.size:
            raise ValueError("successor indices out of range")
        self.succ = succ
        self.size = succ.size
        self._budget = budget

    def _check_budget(self, tick: int) -> None:
        if self._budget is not None and tick % _CHECK_EVERY == 0:
            self._budget.check()

    # -- core decomposition ---------------------------------------------------

    @cached_property
    def _peel(self) -> tuple[np.ndarray, np.ndarray]:
        """In-degree peeling: (on_cycle mask, peel order of tree nodes).

        Repeatedly delete in-degree-0 nodes (Kahn's algorithm specialised to
        out-degree 1).  What survives is exactly the set of cycle nodes; the
        deletion order is a topological order of the transient trees, with
        every node preceding its successor's deletion.
        """
        indeg = np.bincount(self.succ, minlength=self.size)
        order = np.empty(self.size, dtype=np.int64)
        head = 0
        tail = 0
        zero = np.flatnonzero(indeg == 0)
        order[: zero.size] = zero
        tail = zero.size
        while head < tail:
            v = order[head]
            head += 1
            self._check_budget(head)
            w = self.succ[v]
            indeg[w] -= 1
            if indeg[w] == 0:
                order[tail] = w
                tail += 1
        on_cycle = indeg > 0
        return on_cycle, order[:tail]

    @property
    def on_cycle(self) -> np.ndarray:
        """Boolean mask: node lies on a cycle (fixed points included)."""
        return self._peel[0]

    @cached_property
    def fixed_points(self) -> np.ndarray:
        """Nodes with ``succ[v] == v``."""
        return np.flatnonzero(self.succ == np.arange(self.size))

    @cached_property
    def cycles(self) -> list[list[int]]:
        """All cycles, each listed in successor order (fixed points included)."""
        on_cycle = self.on_cycle
        visited = np.zeros(self.size, dtype=bool)
        out: list[list[int]] = []
        tick = 0
        for start in np.flatnonzero(on_cycle):
            if visited[start]:
                continue
            cyc = []
            v = int(start)
            while not visited[v]:
                tick += 1
                self._check_budget(tick)
                visited[v] = True
                cyc.append(v)
                v = int(self.succ[v])
            out.append(cyc)
        return out

    @cached_property
    def proper_cycles(self) -> list[list[int]]:
        """Cycles of length >= 2 (the paper's nontrivial temporal cycles)."""
        return [c for c in self.cycles if len(c) >= 2]

    @cached_property
    def attractor_of(self) -> np.ndarray:
        """Index (into :attr:`cycles`) of the attractor each node falls into."""
        label = np.full(self.size, -1, dtype=np.int64)
        for k, cyc in enumerate(self.cycles):
            label[cyc] = k
        on_cycle, peel_order = self._peel
        # Process transient nodes in reverse peel order: each node's
        # successor is deleted after it, hence already labelled in reverse.
        for tick, v in enumerate(peel_order[::-1]):
            self._check_budget(tick)
            label[v] = label[self.succ[v]]
        if np.any(label < 0):  # pragma: no cover - would indicate a bug
            raise AssertionError("attractor labelling incomplete")
        return label

    @cached_property
    def steps_to_cycle(self) -> np.ndarray:
        """Number of steps from each node to the first on-cycle node."""
        dist = np.zeros(self.size, dtype=np.int64)
        _, peel_order = self._peel
        for tick, v in enumerate(peel_order[::-1]):
            self._check_budget(tick)
            dist[v] = dist[self.succ[v]] + 1 if not self.on_cycle[self.succ[v]] else 1
        dist[self.on_cycle] = 0
        return dist

    # -- derived views ----------------------------------------------------------

    @cached_property
    def in_degrees(self) -> np.ndarray:
        """In-degree of every node in the functional graph."""
        return np.bincount(self.succ, minlength=self.size)

    @cached_property
    def gardens_of_eden(self) -> np.ndarray:
        """Nodes with no predecessor — unreachable configurations.

        The "Garden of Eden" configurations of the CA literature (and of the
        paper's reference [3]).
        """
        return np.flatnonzero(self.in_degrees == 0)

    def basin_sizes(self) -> np.ndarray:
        """Number of nodes draining into each attractor (cycle included)."""
        return np.bincount(self.attractor_of, minlength=len(self.cycles))

    def max_transient(self) -> int:
        """Length of the longest transient tail."""
        return int(self.steps_to_cycle.max())


def cycle_length_counts(graph: FunctionalGraph) -> dict[str, int]:
    """Attractor census of a materialized functional graph.

    The comparator for the attractor-direct kernel
    (:mod:`repro.perf.attractor`): the same four counts — fixed points,
    configurations on proper cycles, configurations on two-cycles, and
    the longest cycle length — computed the classical way from a stored
    successor array, so the two paths can be diffed byte for byte.
    """
    fixed_points = int(graph.fixed_points.size)
    cycle_configs = 0
    two_cycle_configs = 0
    max_cycle_len = 0
    for cycle in graph.cycles:
        length = len(cycle)
        max_cycle_len = max(max_cycle_len, length)
        if length >= 2:
            cycle_configs += length
            if length == 2:
                two_cycle_configs += length
    return {
        "fixed_points": fixed_points,
        "cycle_configs": cycle_configs,
        "two_cycle_configs": two_cycle_configs,
        "max_cycle_len": max_cycle_len,
    }


def scc_labels(
    rows: np.ndarray, cols: np.ndarray, num_nodes: int
) -> tuple[int, np.ndarray]:
    """Strongly connected component labels of a sparse digraph.

    ``rows -> cols`` are the directed edges.  Wraps SciPy's compiled
    implementation; returns ``(n_components, labels)``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError("rows and cols must have equal length")
    mat = sparse.csr_matrix(
        (np.ones(rows.size, dtype=np.int8), (rows, cols)),
        shape=(num_nodes, num_nodes),
    )
    n_comp, labels = csgraph.connected_components(
        mat, directed=True, connection="strong"
    )
    return int(n_comp), labels


def strongly_connected_sizes(
    rows: np.ndarray, cols: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Sizes of all SCCs of the digraph with the given edge list."""
    n_comp, labels = scc_labels(rows, cols, num_nodes)
    return np.bincount(labels, minlength=n_comp)


def scc_labels_python(
    rows: np.ndarray, cols: np.ndarray, num_nodes: int
) -> tuple[int, np.ndarray]:
    """Reference SCC implementation: iterative Tarjan in pure Python.

    Same contract as :func:`scc_labels`.  Kept as the correctness oracle
    and the ablation baseline for the compiled SciPy path (see
    ``benchmarks/bench_ablation_scc.py``); use :func:`scc_labels` in
    production code.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError("rows and cols must have equal length")
    # CSR-style adjacency built with NumPy, traversal in Python.
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    sorted_cols = cols[order]
    starts = np.searchsorted(sorted_rows, np.arange(num_nodes + 1))

    index = np.full(num_nodes, -1, dtype=np.int64)
    lowlink = np.zeros(num_nodes, dtype=np.int64)
    on_stack = np.zeros(num_nodes, dtype=bool)
    labels = np.full(num_nodes, -1, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    n_components = 0

    for root in range(num_nodes):
        if index[root] != -1:
            continue
        # Iterative Tarjan: work items are (vertex, next-edge-offset).
        work = [(root, 0)]
        while work:
            v, edge_pos = work[-1]
            if edge_pos == 0:
                index[v] = lowlink[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            for k in range(starts[v] + edge_pos, starts[v + 1]):
                w = int(sorted_cols[k])
                if index[w] == -1:
                    work[-1] = (v, k - starts[v] + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if lowlink[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    labels[w] = n_components
                    if w == v:
                        break
                n_components += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return n_components, labels
