"""Phase-space analysis utilities: cycle machinery, statistics, rendering.

``statistics`` and ``drawing`` depend on :mod:`repro.core`, which in turn
uses :mod:`repro.analysis.cycles`; to keep that dependency acyclic, this
package eagerly exposes only the cycle machinery and loads the higher-level
modules lazily on first attribute access.
"""

from repro.analysis.cycles import FunctionalGraph, scc_labels, strongly_connected_sizes

__all__ = [
    "FunctionalGraph",
    "scc_labels",
    "strongly_connected_sizes",
    "majority_ring_census",
    "find_linear_recurrence",
    "survey_all_rules",
    "survey_summary",
    "canonical_code",
    "symmetry_classes",
    "check_translation_equivariance",
    "canonical_form",
    "functional_graphs_isomorphic",
    "phase_spaces_isomorphic",
    "is_linear_ca",
    "check_linear_structure",
    "gf2_rank",
    "PhaseSpaceStats",
    "phase_space_stats",
    "nondet_stats",
    "phase_space_dot",
    "nondet_phase_space_dot",
    "render_spacetime",
    "ascii_phase_space",
]

_LAZY = {
    "PhaseSpaceStats": "repro.analysis.statistics",
    "majority_ring_census": "repro.analysis.census",
    "find_linear_recurrence": "repro.analysis.census",
    "survey_all_rules": "repro.analysis.elementary",
    "survey_summary": "repro.analysis.elementary",
    "canonical_code": "repro.analysis.symmetry",
    "symmetry_classes": "repro.analysis.symmetry",
    "check_translation_equivariance": "repro.analysis.symmetry",
    "canonical_form": "repro.analysis.isomorphism",
    "functional_graphs_isomorphic": "repro.analysis.isomorphism",
    "phase_spaces_isomorphic": "repro.analysis.isomorphism",
    "is_linear_ca": "repro.analysis.linear",
    "check_linear_structure": "repro.analysis.linear",
    "gf2_rank": "repro.analysis.linear",
    "phase_space_stats": "repro.analysis.statistics",
    "nondet_stats": "repro.analysis.statistics",
    "phase_space_dot": "repro.analysis.drawing",
    "nondet_phase_space_dot": "repro.analysis.drawing",
    "render_spacetime": "repro.analysis.drawing",
    "ascii_phase_space": "repro.analysis.drawing",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
