"""Dihedral symmetry quotients of configuration and schedule space.

A homogeneous rule on a ring commutes with the ring's symmetry group
(:mod:`repro.analysis.symmetry`): rotations always, reflections exactly
when the local rule is mirror-symmetric in its window.  Fixed-point-ness,
cycle membership and cycle length are therefore *class functions* — they
agree across a whole orbit — so an exact attractor census only needs one
representative per orbit, weighted by the orbit size.  That is a ~2n×
reduction in work, and it is what lifts the attractor-direct census past
the materialized ``MAX_SWEEP_N`` ceiling (the Macauley–McCammond
order-independence results in PAPERS.md justify the same quotient on the
sequential side, which :func:`update_order_reps` applies to schedules).

Representatives are *canonical*: the numerically least code in the orbit
(:func:`repro.util.bitops.canonical_ring_form`).  Enumeration over a code
range uses a progressive filter — survivors of ``c <= rot_s(c)`` are
compacted before the next rotation is tried — so the whole-space scan
costs about ``2**n · ln n`` word operations rather than ``2**n · 2n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro.util.bitops import (
    reverse_bits,
    reverse_bits_array,
    rotate_bits,
    rotate_bits_array,
)

__all__ = [
    "QuotientSpec",
    "quotient_mode",
    "orbit_reps_in_range",
    "orbit_weights",
    "canonical_update_order",
    "update_order_reps",
]

#: widest window whose truth table the mirror-symmetry probe will build
#: (matches the LUT materialization gate in ``UpdateRule.lut``)
_MAX_PROBE_WIDTH = 16


def _rotation_filter(surv: np.ndarray, n: int) -> np.ndarray:
    """Survivors that are minimal among all their rotations."""
    for shift in range(1, n):
        if surv.size == 0:
            break
        surv = surv[surv <= rotate_bits_array(surv, n, shift)]
    return surv


def _reflection_filter(surv: np.ndarray, n: int) -> np.ndarray:
    """Survivors also minimal among all rotations of their reflection.

    Split out as a named seam: dropping this stage (while keeping
    dihedral weights) double-counts every chiral orbit — the known-bad
    mutant ``quotient-reflection-drop`` in :mod:`repro.qa.mutants`.
    """
    if surv.size == 0:
        return surv
    refl = reverse_bits_array(surv, n)
    keep = np.ones(surv.size, dtype=bool)
    for shift in range(n):
        keep &= surv <= rotate_bits_array(refl, n, shift)
    return surv[keep]


def orbit_reps_in_range(
    n: int, lo: int, hi: int, reflections: bool = True
) -> np.ndarray:
    """Canonical orbit representatives among codes ``lo .. hi - 1``.

    A code is a representative iff it equals its own canonical form, so
    restricting to a range is exact: the union over a partition of
    ``[0, 2**n)`` is the full representative set, which is what lets the
    process backend shard representative enumeration by code range.
    """
    if hi <= lo:
        return np.empty(0, dtype=np.uint64)
    full = (1 << n) - 1
    # A representative other than the all-ones ring has some 0 bit, hence
    # a rotation below 2**(n-1): prune the whole upper half up front.
    half = 1 << (n - 1)
    if lo >= half:
        return (
            np.array([full], dtype=np.uint64)
            if lo <= full < hi
            else np.empty(0, dtype=np.uint64)
        )
    surv = np.arange(lo, min(hi, half), dtype=np.uint64)
    surv = _rotation_filter(surv, n)
    if reflections:
        surv = _reflection_filter(surv, n)
    if lo <= full < hi:
        surv = np.concatenate([surv, np.array([full], dtype=np.uint64)])
    return surv


def orbit_weights(
    reps: np.ndarray, n: int, reflections: bool = True
) -> np.ndarray:
    """Orbit size of each canonical representative.

    The cyclic orbit size is the minimal rotation period ``p`` (the least
    divisor ``d`` of ``n`` with ``rot_d(r) == r``); the dihedral orbit is
    ``p`` when the orbit is achiral (its reflection is one of its own
    rotations) and ``2p`` otherwise.  Summed over all representatives the
    weights recover ``2**n`` exactly — the coverage identity the qa
    differential check enforces.
    """
    reps = reps.astype(np.uint64, copy=False)
    period = np.full(reps.size, n, dtype=np.int64)
    for d in range(1, n):
        if n % d:
            continue
        fixed = rotate_bits_array(reps, n, d) == reps
        period[fixed & (period == n)] = d
    if not reflections:
        return period
    # Achiral iff the rotation-canonical form of the reflection is the
    # representative itself (representatives are rotation-minimal).
    refl = reverse_bits_array(reps, n)
    best = refl.copy()
    for shift in range(1, n):
        np.minimum(best, rotate_bits_array(refl, n, shift), out=best)
    achiral = best == reps
    return np.where(achiral, period, 2 * period)


def _mirror_symmetric(rule, width: int) -> bool:
    """Is the rule invariant under reversing its input window?

    Ring windows list neighbours in ascending offset order (see
    ``repro.spaces.line``), so reversing the window's input bits *is* the
    spatial mirror.  Totalistic rules (a count profile exists) are mirror
    symmetric by construction; otherwise probe the truth table.
    """
    if rule.count_profile(width) is not None:
        return True
    if width > _MAX_PROBE_WIDTH:
        return False
    try:
        lut = np.asarray(rule.lut(width), dtype=np.uint8)
    except ValueError:
        return False
    codes = np.arange(1 << width, dtype=np.uint64)
    return bool(np.array_equal(lut, lut[reverse_bits_array(codes, width)]))


def quotient_mode(ca) -> str:
    """The largest symmetry quotient valid for this automaton.

    ``"dihedral"`` for a homogeneous ring with a mirror-symmetric rule,
    ``"cyclic"`` for a homogeneous ring with an asymmetric rule, and
    ``"trivial"`` (no quotient — every code is its own representative)
    otherwise.  Validity is structural: only symmetries the global map
    provably commutes with are used, so the quotiented census is exact by
    construction, never heuristically.
    """
    from repro.spaces.line import Ring

    if not isinstance(ca.space, Ring):
        return "trivial"
    groups = ca._rule_groups()
    if len(groups) != 1:
        return "trivial"
    rule = groups[0][0]
    width = int(ca._lengths[0])
    if int(ca._lengths.min()) != width or int(ca._lengths.max()) != width:
        return "trivial"  # pragma: no cover - rings always have equal widths
    return "dihedral" if _mirror_symmetric(rule, width) else "cyclic"


@dataclass(frozen=True)
class QuotientSpec:
    """One chosen symmetry quotient of an ``n``-node configuration space."""

    n: int
    mode: str  # "trivial" | "cyclic" | "dihedral"

    def __post_init__(self):
        if self.mode not in ("trivial", "cyclic", "dihedral"):
            raise ValueError(f"unknown quotient mode {self.mode!r}")

    @classmethod
    def for_automaton(cls, ca) -> "QuotientSpec":
        return cls(ca.n, quotient_mode(ca))

    @property
    def reflections(self) -> bool:
        return self.mode == "dihedral"

    def reps_in_range(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """``(representatives, orbit weights)`` for codes ``lo .. hi - 1``."""
        if self.mode == "trivial":
            reps = np.arange(lo, hi, dtype=np.uint64)
            return reps, np.ones(reps.size, dtype=np.int64)
        reps = orbit_reps_in_range(self.n, lo, hi, self.reflections)
        return reps, orbit_weights(reps, self.n, self.reflections)

    def describe(self) -> str:
        return f"{self.mode} quotient (n={self.n})"


# -- schedule-space quotient ---------------------------------------------------


def canonical_update_order(
    order, n: int, reflections: bool = True
) -> tuple[int, ...]:
    """Least dihedral conjugate of a sequential update order.

    A rotation ``sigma_s`` (or mirror ``mu``) of the ring conjugates the
    composed sequential map: updating nodes ``(pi_0, pi_1, ...)`` on a
    configuration is equivalent to updating ``(sigma(pi_0), ...)`` on the
    rotated configuration.  Conjugate schedules therefore share every
    attractor statistic, and the least image under the group is a
    canonical representative — a ~2n× reduction of the schedule census.
    """
    order = tuple(int(i) % n for i in order)
    best = order
    for s in range(n):
        rot = tuple((i + s) % n for i in order)
        best = min(best, rot)
        if reflections:
            best = min(best, tuple((n - 1 - i + s) % n for i in order))
    return best


def update_order_reps(
    n: int, reflections: bool = True
) -> tuple[list[tuple[int, ...]], np.ndarray]:
    """Canonical representatives of all ``n!`` sequential update orders.

    Returns ``(reps, weights)`` with the weights summing to ``n!`` — the
    schedule-space analogue of :meth:`QuotientSpec.reps_in_range`.  Full
    enumeration, so intended for the small ``n`` the sequential census
    sweeps (``n! <= 8!``).
    """
    if n > 8:
        raise ValueError(
            f"update_order_reps enumerates all n! orders; n={n} is too large"
        )
    counts: dict[tuple[int, ...], int] = {}
    for perm in permutations(range(n)):
        rep = canonical_update_order(perm, n, reflections)
        counts[rep] = counts.get(rep, 0) + 1
    reps = sorted(counts)
    return reps, np.array([counts[r] for r in reps], dtype=np.int64)


def _scalar_canonical(code: int, n: int, reflections: bool = True) -> int:
    """Scalar reference for the vectorized canonical form (test oracle)."""
    best = code
    for shift in range(n):
        r = rotate_bits(code, n, shift)
        best = min(best, r)
        if reflections:
            best = min(best, reverse_bits(r, n))
    return best
