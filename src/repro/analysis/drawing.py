"""Rendering: DOT exports of phase spaces, ASCII space-time diagrams.

:func:`phase_space_dot` and :func:`nondet_phase_space_dot` regenerate the
paper's Figure 1 as Graphviz sources (see ``examples/fig1_xor.py``); the
sequential variant labels each transition arrow with the updating node's
number, exactly as Fig. 1(b) does.  :func:`render_spacetime` draws 1-D
trajectories as text rasters for quick inspection in a terminal.
"""

from __future__ import annotations

import numpy as np

from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import ConfigClass, PhaseSpace
from repro.util.bitops import config_str

__all__ = ["phase_space_dot", "nondet_phase_space_dot", "render_spacetime",
           "ascii_phase_space"]

_CLASS_STYLE = {
    ConfigClass.FIXED_POINT: "shape=doublecircle",
    ConfigClass.CYCLE: "shape=circle, style=bold",
    ConfigClass.TRANSIENT: "shape=circle",
}


def phase_space_dot(ps: PhaseSpace, title: str = "phase space") -> str:
    """Graphviz DOT source of a deterministic phase space.

    Fixed points are drawn as double circles, proper-cycle configurations
    bold, transients plain — the visual vocabulary of the paper's Fig. 1(a).
    """
    lines = [
        "digraph phase_space {",
        f'  label="{title}";',
        "  rankdir=LR;",
    ]
    for code in range(ps.size):
        label = config_str(code, ps.n_nodes)
        style = _CLASS_STYLE[ps.classify(code)]
        lines.append(f'  c{code} [label="{label}", {style}];')
    for code in range(ps.size):
        lines.append(f"  c{code} -> c{int(ps.succ[code])};")
    lines.append("}")
    return "\n".join(lines)


def nondet_phase_space_dot(
    nps: NondetPhaseSpace,
    title: str = "sequential phase space",
    include_self_loops: bool = False,
    node_base: int = 1,
) -> str:
    """Graphviz DOT source of a sequential phase space, edges labelled by
    the updating node (numbered from ``node_base``, matching the paper's
    1-based node numbers in Fig. 1(b))."""
    fixed = set(int(c) for c in nps.fixed_points)
    pseudo = set(int(c) for c in nps.pseudo_fixed_points)
    lines = [
        "digraph sequential_phase_space {",
        f'  label="{title}";',
        "  rankdir=LR;",
    ]
    for code in range(nps.size):
        label = config_str(code, nps.n_nodes)
        if code in fixed:
            style = "shape=doublecircle"
        elif code in pseudo:
            style = "shape=circle, style=dashed"
        else:
            style = "shape=circle"
        lines.append(f'  c{code} [label="{label}", {style}];')
    for code in range(nps.size):
        for node, dst in nps.transitions(code):
            if dst == code and not include_self_loops:
                continue
            lines.append(
                f'  c{code} -> c{dst} [label="{node + node_base}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def render_spacetime(
    trajectory: np.ndarray, chars: str = ".#", ruler: bool = False
) -> str:
    """ASCII space-time diagram: one row per time step, one column per node.

    ``trajectory`` is a ``(steps, n)`` 0/1 array (e.g. the output of
    :func:`repro.core.evolution.parallel_trajectory`).
    """
    arr = np.asarray(trajectory)
    if arr.ndim != 2:
        raise ValueError(f"trajectory must be 2-D, got shape {arr.shape}")
    if len(chars) != 2:
        raise ValueError("chars must supply exactly two glyphs (for 0 and 1)")
    rows = []
    if ruler:
        n = arr.shape[1]
        rows.append("".join(str(i % 10) for i in range(n)))
    for row in arr:
        rows.append("".join(chars[int(b)] for b in row))
    return "\n".join(rows)


def ascii_phase_space(ps: PhaseSpace) -> str:
    """Terminal-friendly adjacency listing of a small deterministic PS."""
    if ps.size > 256:
        raise ValueError("ascii rendering is intended for n <= 8 nodes")
    out = []
    names = {
        ConfigClass.FIXED_POINT: "FP",
        ConfigClass.CYCLE: "CC",
        ConfigClass.TRANSIENT: "TC",
    }
    for code in range(ps.size):
        label = config_str(code, ps.n_nodes)
        succ = config_str(int(ps.succ[code]), ps.n_nodes)
        out.append(f"{label} -> {succ}   [{names[ps.classify(code)]}]")
    return "\n".join(out)
