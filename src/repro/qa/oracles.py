"""Invariant oracles: the paper's theorems as executable fuzz checks.

Each oracle inspects the instance's *rule structure* to decide whether a
theorem applies, then verifies its conclusion against the ground-truth
sweep results (the scalar-oracle successor arrays — so a kernel bug is
reported by the differential checks, not misattributed to a theorem):

* ``oracle.sequential_cycle_free`` — Lemma 1/2: a threshold CA *with
  memory* (every local rule monotone and symmetric) has no proper cycle
  in its sequential (one-node-at-a-time) phase space, under any order.
* ``oracle.parallel_two_cycles`` — Theorem 1 (Goles–Olivos): the
  synchronous dynamics of a threshold CA over a symmetric neighborhood
  structure has only fixed points and two-cycles.
* ``oracle.linear_superposition`` — XOR/affine rules: the global map
  satisfies ``F(x) = F(0) ^ xor_{j in x} (F(e_j) ^ F(0))``.
* ``oracle.schedule_commutation`` — Macauley–McCammond order
  independence where predicted: single-node updates of nodes outside
  each other's windows commute exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.nondet import NondetPhaseSpace
from repro.core.phase_space import PhaseSpace
from repro.qa.generators import build_rule

__all__ = ["ORACLE_CHECKS", "rules_all_threshold", "rules_all_affine"]


def _distinct_tables(spec) -> list[np.ndarray]:
    """Truth tables of the distinct rule specs at the instance width."""
    width = spec.width
    seen: dict[bytes, np.ndarray] = {}
    for rspec in spec.rules:
        key = repr(sorted(rspec.items())).encode()
        if key not in seen:
            rule = build_rule(rspec, width)
            seen[key] = rule.truth_table(width).table
    return list(seen.values())


def rules_all_threshold(spec) -> bool:
    """True iff every local rule is monotone and symmetric at its width.

    Monotone symmetric Boolean functions are exactly the simple-threshold
    (k-of-n) rules the paper's lemmas quantify over.
    """
    from repro.core.boolean import BooleanFunction

    for table in _distinct_tables(spec):
        f = BooleanFunction(table)
        if not (f.is_monotone() and f.is_symmetric()):
            return False
    return True


def _affine_table(table: np.ndarray) -> bool:
    k = int(table.size).bit_length() - 1
    base = int(table[0])
    pred = np.full(table.size, base, dtype=np.uint8)
    for j in range(k):
        half = 1 << j
        pred[half : 2 * half] = pred[:half] ^ (int(table[half]) ^ base)
    return bool(np.array_equal(pred, table))


def rules_all_affine(spec) -> bool:
    """True iff every local rule is an XOR of inputs plus a constant."""
    return all(_affine_table(t) for t in _distinct_tables(spec))


# -- oracles -------------------------------------------------------------------


def check_sequential_cycle_free(inst):
    spec = inst.spec
    if not spec.memory or not rules_all_threshold(spec):
        return None
    nps = NondetPhaseSpace(inst.oracle_node_succ, inst.ca.n)
    if nps.has_proper_cycle():
        summary = nps.summary()
        return {
            "invariant": "sequential threshold CA are cycle-free (Lemma 1/2)",
            "proper_cycle_components": summary["proper_cycle_components"],
            "summary": summary,
        }
    return None


def check_parallel_two_cycles(inst):
    spec = inst.spec
    if not rules_all_threshold(spec):
        return None
    ps = PhaseSpace(inst.oracle_succ, inst.ca.n)
    lengths = ps.summary()["cycle_lengths"]
    bad = [int(length) for length in lengths if int(length) > 2]
    if bad:
        return {
            "invariant": (
                "parallel threshold CA have period <= 2 (Theorem 1)"
            ),
            "cycle_lengths": [int(length) for length in lengths],
            "offending_lengths": bad,
        }
    return None


def check_linear_superposition(inst):
    spec = inst.spec
    if not rules_all_affine(spec):
        return None
    succ = inst.oracle_succ
    n = inst.ca.n
    base = int(succ[0])
    pred = np.full(succ.size, base, dtype=np.int64)
    for j in range(n):
        half = 1 << j
        pred[half : 2 * half] = pred[:half] ^ (int(succ[half]) ^ base)
    if not np.array_equal(pred, succ):
        codes = np.flatnonzero(pred != succ)[:4]
        return {
            "invariant": "affine rules obey superposition",
            "codes": [int(c) for c in codes],
            "expected": [int(pred[c]) for c in codes],
            "got": [int(succ[c]) for c in codes],
        }
    return None


def check_schedule_commutation(inst):
    ca = inst.ca
    n = ca.n
    windows = []
    for i in range(n):
        k = int(ca._lengths[i])
        win = set(int(s) for s in np.asarray(ca._windows[i][:k]))
        win.discard(n)  # quiescent sentinel slot
        windows.append(win)
    node_succ = inst.oracle_node_succ
    for i in range(n):
        for j in range(i + 1, n):
            if i in windows[j] or j in windows[i]:
                continue
            ij = node_succ[j][node_succ[i]]
            ji = node_succ[i][node_succ[j]]
            if not np.array_equal(ij, ji):
                codes = np.flatnonzero(ij != ji)[:4]
                return {
                    "invariant": (
                        "independent single-node updates commute "
                        "(Macauley-McCammond)"
                    ),
                    "nodes": [int(i), int(j)],
                    "codes": [int(c) for c in codes],
                    "i_then_j": [int(ij[c]) for c in codes],
                    "j_then_i": [int(ji[c]) for c in codes],
                }
    return None


ORACLE_CHECKS = {
    "oracle.sequential_cycle_free": check_sequential_cycle_free,
    "oracle.parallel_two_cycles": check_parallel_two_cycles,
    "oracle.linear_superposition": check_linear_superposition,
    "oracle.schedule_commutation": check_schedule_commutation,
}
