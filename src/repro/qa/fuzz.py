"""The fuzz driver: seeded case loop, budget governance, self-test.

``run_fuzz`` derives one independent sub-seed per case from the master
seed (via :class:`numpy.random.SeedSequence`, so case ``c`` of seed ``s``
is the same instance on every machine), samples an instance under the
ambient budget, runs the check registry, and shrinks whatever fails.
Everything is observable: ``qa.*`` counters and spans flow through the
obs stack, findings serialise as run artifacts.

``run_self_test`` proves the oracles have teeth: each mutant kernel from
:mod:`repro.qa.mutants` is installed in turn and the loop must catch it
and shrink the counterexample to ``n <= 6``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.budget import Budget, resolve_budget
from repro.qa.differential import (
    CHECKS,
    Instance,
    applicable_backends,
    run_check,
    run_first_violation,
)
from repro.qa.findings import Finding
from repro.qa.generators import InstanceSpec, sample_spec
from repro.qa.mutants import MUTANTS, active_mutant
from repro.qa.shrink import shrink_spec

__all__ = [
    "FuzzReport",
    "run_fuzz",
    "run_self_test",
    "replay_spec",
    "replay_finding",
    "case_seed",
    "DEFAULT_MAX_FINDINGS",
    "SELF_TEST_MAX_N",
]

#: the fuzz loop stops after this many findings (each one is shrunk,
#: which re-runs the failing check many times)
DEFAULT_MAX_FINDINGS = 8

#: acceptance bar for the self-test: every mutant must shrink to n <= 6
SELF_TEST_MAX_N = 6


def case_seed(seed: int, case: int) -> int:
    """Deterministic, machine-independent sub-seed for one fuzz case."""
    state = np.random.SeedSequence([int(seed), int(case)]).generate_state(1)
    return int(state[0])


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    cases_requested: int
    cases_run: int = 0
    findings: list = field(default_factory=list)
    truncated: str | None = None  #: budget trip reason, if the loop stopped early
    backends_seen: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def summary_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases_requested": self.cases_requested,
            "cases_run": self.cases_run,
            "findings": len(self.findings),
            "truncated": self.truncated,
            "backends_seen": sorted(self.backends_seen),
        }


def run_fuzz(
    seed: int = 0,
    cases: int = 100,
    backends: list[str] | None = None,
    shrink: bool = True,
    budget: Budget | None = None,
    max_findings: int = DEFAULT_MAX_FINDINGS,
    findings_dir: str | Path | None = None,
    max_n: int | None = None,
) -> FuzzReport:
    """Run the seeded fuzz loop; returns the (deterministic) report."""
    budget = resolve_budget(budget)
    report = FuzzReport(seed=int(seed), cases_requested=int(cases))
    seen_backends: set[str] = set()
    for case in range(cases):
        reason = budget.over()
        if reason is not None:
            report.truncated = reason
            break
        if len(report.findings) >= max_findings:
            break
        # One unit of governed work per case: feeds the states cap and
        # any attached progress reporter (rate/ETA over cases).
        budget.charge(states=1)
        spec = sample_spec(case_seed(seed, case), budget=budget, max_n=max_n)
        with obs.span(
            "qa.case", case=case, seed=spec.seed, instance=spec.describe()
        ) as sp:
            obs.inc("qa.cases")
            inst = Instance(spec, backends)
            seen_backends.update(inst.backends)
            report.cases_run += 1
            hit = None
            if inst.backends:
                for name, fn in CHECKS.items():
                    violation = fn(inst)
                    if violation is not None:
                        hit = (name, violation)
                        break
            if hit is None:
                continue
            check, violation = hit
            obs.inc("qa.findings")
            sp.set(check=check)
            original = spec
            steps = 0
            if shrink:
                with obs.span("qa.shrink", check=check):
                    spec, steps = shrink_spec(spec, check, backends)
                    violation = run_check(spec, check, backends) or violation
            finding = Finding(
                check=check,
                detail=violation,
                spec=spec.to_dict(),
                backends=applicable_backends(spec, backends),
                shrunk=steps > 0,
                shrink_steps=steps,
                original_spec=(
                    original.to_dict() if steps > 0 else None
                ),
            )
            report.findings.append(finding)
            if findings_dir is not None:
                finding.save(findings_dir)
    report.backends_seen = sorted(seen_backends)
    return report


def run_self_test(
    seed: int = 0,
    cases: int = 400,
    backends: list[str] | None = None,
    findings_dir: str | Path | None = None,
) -> dict:
    """Fuzz with each mutant kernel installed; all must be caught.

    Returns ``{mutant: {"caught", "shrunk_n", "check", "cases_run"}}``.
    """
    results: dict[str, dict] = {}
    for name in MUTANTS:
        with obs.span("qa.self_test", mutant=name):
            with active_mutant(name):
                report = run_fuzz(
                    seed=seed,
                    cases=cases,
                    backends=backends,
                    shrink=True,
                    max_findings=1,
                    findings_dir=findings_dir,
                )
        if report.findings:
            finding = report.findings[0]
            results[name] = {
                "caught": True,
                "check": finding.check,
                "shrunk_n": int(finding.spec["n"]),
                "cases_run": report.cases_run,
                "digest": finding.digest,
            }
            obs.inc("qa.mutants_caught")
        else:
            results[name] = {
                "caught": False,
                "cases_run": report.cases_run,
                "truncated": report.truncated,
            }
            obs.inc("qa.mutants_missed")
    return results


def replay_spec(
    spec: dict | InstanceSpec,
    check: str | None = None,
    backends: list[str] | None = None,
):
    """Re-run one check (or all) on a spec; first violation or None."""
    if isinstance(spec, dict):
        spec = InstanceSpec.from_dict(spec)
    if check is not None:
        return run_check(spec, check, backends)
    hit = run_first_violation(spec, backends)
    return None if hit is None else hit[1]


def replay_finding(path: str | Path, backends: list[str] | None = None):
    """Replay a ``finding.json``; the violation dict, or None if fixed."""
    finding = Finding.load(path)
    return replay_spec(finding.spec, check=finding.check, backends=backends)
