"""Seeded differential fuzzing and invariant oracles (``repro fuzz``).

The qa subsystem hunts for disagreements between the sweep backends and
for violations of the paper's theorems on randomly generated instances:

* :mod:`repro.qa.generators` — seeded random CA instances (rule
  families, topologies, schedules) sized adaptively under a Budget;
* :mod:`repro.qa.differential` — every applicable backend pair diffed
  against the ``step_naive`` oracle, including the trip/resume path;
* :mod:`repro.qa.oracles` — Lemma 1/2 cycle-freeness, Theorem 1
  two-cycles, linear superposition, schedule-order independence;
* :mod:`repro.qa.shrink` — greedy, deterministic counterexample
  minimisation;
* :mod:`repro.qa.findings` — byte-for-byte reproducible
  ``finding.json`` artifacts with ready-to-paste pytest snippets;
* :mod:`repro.qa.mutants` — known-bad kernels for the self-test.
"""

from repro.qa.differential import (
    CHECKS,
    Instance,
    applicable_backends,
    run_all_checks,
    run_check,
    run_first_violation,
)
from repro.qa.findings import Finding, canonical_json, spec_digest
from repro.qa.fuzz import (
    FuzzReport,
    case_seed,
    replay_finding,
    replay_spec,
    run_fuzz,
    run_self_test,
)
from repro.qa.generators import (
    InstanceSpec,
    build_automaton,
    build_rule,
    build_schedule,
    sample_spec,
)
from repro.qa.mutants import MUTANTS, active_mutant
from repro.qa.shrink import shrink_spec

__all__ = [
    "CHECKS",
    "Finding",
    "FuzzReport",
    "Instance",
    "InstanceSpec",
    "MUTANTS",
    "active_mutant",
    "applicable_backends",
    "build_automaton",
    "build_rule",
    "build_schedule",
    "canonical_json",
    "case_seed",
    "replay_finding",
    "replay_spec",
    "run_all_checks",
    "run_check",
    "run_first_violation",
    "run_fuzz",
    "run_self_test",
    "sample_spec",
    "shrink_spec",
    "spec_digest",
]
