"""Structured, replayable fuzzing findings.

A :class:`Finding` is the durable record of one disagreement: the failing
check's name, a structured detail dict (which backends diverged, at which
packed codes, what each side produced), and the full instance spec needed
to rebuild the automaton and schedule from scratch.  Findings serialise to
canonical JSON — sorted keys, fixed separators, no timestamps — so the
same seed produces the identical ``finding.json`` byte for byte, which is
what lets CI artifacts be diffed and deduplicated across runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core import durable

__all__ = ["Finding", "FINDING_SCHEMA", "canonical_json", "spec_digest"]

#: schema version stamped into finding.json (validated by repro.contracts)
FINDING_SCHEMA = "repro-finding/1"

durable.register_write_site(
    "findings.save", "atomically replace a finding-*.json record"
)


def _jsonify(obj: Any) -> Any:
    """Recursively coerce numpy scalars/arrays into plain JSON types."""
    if isinstance(obj, dict):
        return {str(k): _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if hasattr(obj, "tolist"):  # numpy array or scalar
        return _jsonify(obj.tolist())
    if hasattr(obj, "item"):  # 0-d numpy scalar
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def canonical_json(obj: Any) -> bytes:
    """Deterministic JSON bytes: sorted keys, fixed separators, LF-free."""
    return json.dumps(
        _jsonify(obj), sort_keys=True, separators=(",", ":")
    ).encode("ascii")


def spec_digest(spec: dict) -> str:
    """Short stable digest of an instance spec (finding identity)."""
    return hashlib.sha256(canonical_json(spec)).hexdigest()[:12]


@dataclass
class Finding:
    """One confirmed disagreement, minimised and ready to replay."""

    check: str  #: registry name of the failing check, e.g. "differential.step_all"
    detail: dict  #: structured mismatch info (backends, codes, digests)
    spec: dict  #: minimal instance spec that still fails the check
    backends: list = field(default_factory=list)  #: backend names diffed
    shrunk: bool = False
    shrink_steps: int = 0
    original_spec: dict | None = None  #: pre-shrink spec, when different

    @property
    def digest(self) -> str:
        return spec_digest(self.spec)

    @property
    def name(self) -> str:
        slug = self.check.replace(".", "-")
        return f"finding-{slug}-{self.digest}"

    def to_dict(self) -> dict:
        out = {
            "schema": FINDING_SCHEMA,
            "check": self.check,
            "detail": _jsonify(self.detail),
            "spec": _jsonify(self.spec),
            "backends": list(self.backends),
            "shrunk": self.shrunk,
            "shrink_steps": self.shrink_steps,
            "digest": self.digest,
            "pytest": self.pytest_snippet(),
        }
        if self.original_spec is not None:
            out["original_spec"] = _jsonify(self.original_spec)
        return out

    def to_bytes(self) -> bytes:
        """Canonical serialisation — byte-identical for identical findings."""
        return json.dumps(
            _jsonify(self.to_dict()), sort_keys=True, indent=2
        ).encode("ascii") + b"\n"

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            check=data["check"],
            detail=data.get("detail", {}),
            spec=data["spec"],
            backends=list(data.get("backends", [])),
            shrunk=bool(data.get("shrunk", False)),
            shrink_steps=int(data.get("shrink_steps", 0)),
            original_spec=data.get("original_spec"),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Finding":
        with open(path, "rb") as fh:
            return cls.from_dict(json.loads(fh.read().decode("utf-8")))

    def save(self, directory: str | Path) -> Path:
        """Write ``<name>.json`` under ``directory``; returns the path.

        Durable (temp + fsync + replace + sidecar): findings are the
        repro evidence CI diffs across runs, so a crash mid-save must
        never leave a torn record behind.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return durable.durable_write_bytes(
            directory / f"{self.name}.json",
            self.to_bytes(),
            site="findings.save",
        )

    def pytest_snippet(self) -> str:
        """A ready-to-paste regression test that replays this finding."""
        spec_literal = json.dumps(_jsonify(self.spec), sort_keys=True)
        slug = self.check.replace(".", "_").replace("-", "_")
        return (
            f"def test_qa_{slug}_{self.digest}():\n"
            f'    """Auto-generated by `repro fuzz`; failing check: '
            f'{self.check}."""\n'
            f"    from repro.qa import replay_spec\n"
            f"\n"
            f"    spec = {spec_literal}\n"
            f"    violation = replay_spec(spec, check={self.check!r})\n"
            f"    assert violation is None, violation\n"
        )
