"""Differential harness: every applicable backend against the scalar oracle.

For one :class:`~repro.qa.generators.InstanceSpec` the harness builds the
automaton once per applicable sweep backend and diffs, pairwise against
the ``step_naive`` ground truth:

* ``step_all`` — the full parallel successor array;
* ``all_node_successors`` — the ``(n, 2**n)`` sequential update matrix;
* phase-space digests — :meth:`PhaseSpace.summary` per backend;
* the governed build and the trip/resume path — a frontier computed by
  one backend is resumed by the *next* backend and must land on the same
  phase space as the uninterrupted sweep;
* scalar-vs-swept schedule steps — walking the instance's sequential
  schedule via ``update_node`` must match composing node-successor rows.

Each check returns a structured violation dict (or ``None``), keyed in
:data:`CHECKS` so the shrinker and ``finding.json`` replay can re-run a
single named check deterministically.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.budget import Budget
from repro.core.phase_space import PhaseSpace, build_phase_space
from repro.perf import BACKENDS
from repro.qa.generators import InstanceSpec, build_automaton, build_schedule
from repro.util.bitops import int_to_bits

__all__ = [
    "Instance",
    "CHECKS",
    "DIFFERENTIAL_CHECKS",
    "applicable_backends",
    "run_check",
    "run_first_violation",
    "run_all_checks",
]

#: serial backends eligible for auto-selection in the harness (the
#: ``process`` shard layer forks per sweep — include it explicitly via
#: ``backends=[..., "process"]`` when that cost is wanted; the fuzz CLI
#: does so automatically on hosts with >= 2 CPUs)
AUTO_BACKENDS = ("numpy", "table", "bitplane")

#: how many mismatching codes a violation records (enough to eyeball,
#: small enough to keep finding.json readable)
_MAX_DIFF_CODES = 4


def applicable_backends(
    spec: InstanceSpec, requested: list[str] | None = None
) -> list[str]:
    """Backends that support this instance, in deterministic order."""
    ca = build_automaton(spec)
    names = list(requested) if requested else list(AUTO_BACKENDS)
    out = []
    for name in names:
        if name == "auto":
            continue
        cls = BACKENDS[name]
        if cls.supports(ca) is None:
            out.append(name)
    return out


class Instance:
    """One built fuzz case: lazily computed per-backend sweep results."""

    def __init__(self, spec: InstanceSpec, backends: list[str] | None = None):
        self.spec = spec
        self.ca = build_automaton(spec)  # scalar/default-path automaton
        self.backends = applicable_backends(spec, backends)

    @cached_property
    def cas(self) -> dict:
        return {
            name: build_automaton(self.spec, backend=name)
            for name in self.backends
        }

    # -- ground truth ----------------------------------------------------------

    @cached_property
    def oracle_succ(self) -> np.ndarray:
        """Parallel successors via the scalar ``step_naive`` path."""
        n = self.ca.n
        out = np.empty(1 << n, dtype=np.int64)
        for code in range(1 << n):
            out[code] = self.ca.pack(self.ca.step_naive(int_to_bits(code, n)))
        return out

    @cached_property
    def oracle_node_succ(self) -> np.ndarray:
        """Sequential node successors derived from the parallel oracle.

        Updating node ``i`` alone replaces bit ``i`` with bit ``i`` of the
        full parallel image (each node reads only the *current* state).
        """
        n = self.ca.n
        codes = np.arange(1 << n, dtype=np.int64)
        changed = codes ^ self.oracle_succ
        out = np.empty((n, 1 << n), dtype=np.int64)
        for i in range(n):
            out[i] = codes ^ (((changed >> i) & 1) << i)
        return out

    @cached_property
    def oracle_digest(self) -> dict:
        return PhaseSpace(self.oracle_succ, self.ca.n).summary()


def _diff_codes(expected: np.ndarray, got: np.ndarray) -> dict:
    codes = np.flatnonzero(expected != got)[:_MAX_DIFF_CODES]
    return {
        "mismatches": int(np.count_nonzero(expected != got)),
        "codes": [int(c) for c in codes],
        "expected": [int(expected[c]) for c in codes],
        "got": [int(got[c]) for c in codes],
    }


# -- differential checks -------------------------------------------------------


def check_step_all(inst: Instance):
    for name in inst.backends:
        got = inst.cas[name].step_all()
        if not np.array_equal(got, inst.oracle_succ):
            return {
                "backend": name,
                "vs": "step_naive",
                **_diff_codes(inst.oracle_succ, got),
            }
    return None


def check_node_successors(inst: Instance):
    mid = inst.ca.n // 2
    for name in inst.backends:
        ca = inst.cas[name]
        got = ca.all_node_successors()
        if not np.array_equal(got, inst.oracle_node_succ):
            rows = np.flatnonzero(
                (got != inst.oracle_node_succ).any(axis=1)
            )
            i = int(rows[0])
            return {
                "backend": name,
                "vs": "step_naive",
                "path": "sweep_all_nodes",
                "node": i,
                **_diff_codes(inst.oracle_node_succ[i], got[i]),
            }
        # The single-row chunk kernel is a distinct code path from the
        # shared one-pass sweep: diff one representative row through it.
        row = ca.node_successors(mid)
        if not np.array_equal(row, inst.oracle_node_succ[mid]):
            return {
                "backend": name,
                "vs": "step_naive",
                "path": "node_successors_row",
                "node": mid,
                **_diff_codes(inst.oracle_node_succ[mid], row),
            }
    return None


def check_phase_digest(inst: Instance):
    seen: dict[bytes, dict] = {}
    for name in inst.backends:
        succ = np.asarray(inst.cas[name].step_all())
        key = succ.tobytes()
        if key not in seen:
            seen[key] = PhaseSpace(succ, inst.ca.n).summary()
        digest = seen[key]
        if digest != inst.oracle_digest:
            return {
                "backend": name,
                "vs": "step_naive",
                "digest": digest,
                "expected_digest": inst.oracle_digest,
            }
    return None


def check_trip_resume(inst: Instance):
    """A frontier cut by one backend, resumed by the next, must agree."""
    n = inst.ca.n
    total = 1 << n
    lo = total // 2
    codes = np.arange(lo, dtype=np.int64)
    for idx, name in enumerate(inst.backends):
        ca_a = inst.cas[name]
        ca_b = inst.cas[inst.backends[(idx + 1) % len(inst.backends)]]
        succ = np.empty(total, dtype=np.int64)
        succ[:lo] = ca_a.step_all_range(0, lo)
        frontier = {
            "kind": "phase_space",
            "n": n,
            "next_lo": lo,
            "fixed_points_so_far": int(np.count_nonzero(succ[:lo] == codes)),
            "succ": succ,
        }
        partial = build_phase_space(ca_b, budget=Budget(), frontier=frontier)
        if not partial.complete:
            return {
                "backend": name,
                "resumed_by": ca_b.backend.name,
                "error": f"resumed build truncated: {partial.reason}",
            }
        if not np.array_equal(partial.value.succ, inst.oracle_succ):
            return {
                "backend": name,
                "resumed_by": ca_b.backend.name,
                "vs": "step_naive",
                **_diff_codes(inst.oracle_succ, partial.value.succ),
            }
        expect_fp = int(
            np.count_nonzero(
                inst.oracle_succ == np.arange(total, dtype=np.int64)
            )
        )
        if int(partial.stats.get("fixed_points", -1)) != expect_fp:
            return {
                "backend": name,
                "resumed_by": ca_b.backend.name,
                "error": "resumed fixed-point count diverged",
                "expected": expect_fp,
                "got": int(partial.stats.get("fixed_points", -1)),
            }
    return None


def check_schedule_step(inst: Instance):
    """Scalar ``update_node`` walk vs node-successor composition."""
    schedule = build_schedule(inst.spec.schedule, inst.spec.n)
    if not schedule.is_sequential:
        return None
    n = inst.ca.n
    rng = np.random.default_rng(inst.spec.seed)
    state = rng.integers(0, 2, size=n).astype(np.uint8)
    code = int(inst.ca.pack(state))
    node_succ = inst.oracle_node_succ
    blocks = schedule.blocks(n)
    trail = []
    for _ in range(2 * n):
        (i,) = next(blocks)
        state = inst.ca.update_node(state, i)
        code = int(node_succ[i][code])
        trail.append((int(i), code))
        if int(inst.ca.pack(state)) != code:
            return {
                "vs": "update_node",
                "node": int(i),
                "expected": int(inst.ca.pack(state)),
                "got": code,
                "trail": trail[-3:],
            }
    return None


def check_attractor_census(inst: Instance):
    """Attractor-direct census vs the materialized functional graph.

    Runs the SWAR Brent kernel (dihedral/cyclic/trivial quotient as the
    instance admits) and diffs its weighted counts against
    :func:`~repro.analysis.cycles.cycle_length_counts` of the scalar
    oracle's successor array — the two ends of the tentpole equivalence.
    A coverage-identity failure surfaces here as a truncated census, so
    quotient bugs (the ``quotient-reflection-drop`` mutant) are findings,
    not crashes.
    """
    from repro.analysis.census import build_attractor_census
    from repro.analysis.cycles import FunctionalGraph, cycle_length_counts
    from repro.qa.generators import attractor_applicable

    if attractor_applicable(inst.spec) is not None:
        return None  # instance does not lower to bitwise kernels
    partial = build_attractor_census(inst.ca, budget=Budget())
    expected = cycle_length_counts(FunctionalGraph(inst.oracle_succ))
    if not partial.complete:
        return {
            "vs": "cycle_length_counts",
            "error": f"attractor census not exact: {partial.reason}",
            "expected": expected,
        }
    row = partial.value
    got = {
        "fixed_points": row.fixed_points,
        "cycle_configs": row.cycle_configs,
        "two_cycle_configs": row.two_cycle_configs,
        "max_cycle_len": row.max_cycle_len,
    }
    if got != expected:
        return {
            "vs": "cycle_length_counts",
            "quotient": row.quotient,
            "expected": expected,
            "got": got,
        }
    return None


def _mc_lane_codes(planes: np.ndarray, n: int, lanes: int) -> np.ndarray:
    """Configuration code of every lane of an ``(n, lanes/64)`` bitplane."""
    bits = np.unpackbits(
        np.ascontiguousarray(planes).view(np.uint8), axis=1, bitorder="little"
    )[:, :lanes].astype(np.int64)
    return (bits << np.arange(n, dtype=np.int64)[:, None]).sum(axis=0)


def check_mc_step(inst: Instance):
    """MC trajectory driver vs the scalar ``step_naive`` oracle.

    Drives one 64-lane batch of sampled configurations three parallel
    macro steps through :class:`~repro.mc.kernel.McKernel` and diffs the
    per-step lane codes against composing ``oracle_succ``; when the
    instance's schedule is a fixed permutation, also diffs one sweep
    macro step against composing the oracle's node-successor rows.
    """
    from repro.mc import sampler
    from repro.mc.kernel import McKernel
    from repro.qa.generators import mc_applicable

    if mc_applicable(inst.spec) is not None:
        return None  # instance does not lower to the MC kernel
    n = inst.ca.n
    lanes = 64
    kernel = McKernel.from_automaton(
        inst.ca, seed=inst.spec.seed, lanes=lanes
    )
    planes = sampler.sample_planes(
        "uniform", n, lanes, inst.spec.seed, 0
    )
    codes = _mc_lane_codes(planes, n, lanes)
    for step in range(3):
        planes = kernel.step(planes)
        codes = inst.oracle_succ[codes]
        got = _mc_lane_codes(planes, n, lanes)
        if not np.array_equal(got, codes):
            return {
                "vs": "step_naive",
                "path": "parallel",
                "step": step + 1,
                **_diff_codes(codes, got),
            }
    if inst.spec.schedule.get("kind") == "perm":
        perm = [int(i) for i in inst.spec.schedule["perm"]]
        sweeper = McKernel.from_automaton(
            inst.ca,
            seed=inst.spec.seed,
            lanes=lanes,
            schedule="sweep",
            perm=perm,
        )
        planes = sampler.sample_planes(
            "uniform", n, lanes, inst.spec.seed, lanes
        )
        codes = _mc_lane_codes(planes, n, lanes)
        for i in perm:
            codes = inst.oracle_node_succ[i][codes]
        got = _mc_lane_codes(sweeper.step(planes), n, lanes)
        if not np.array_equal(got, codes):
            return {
                "vs": "step_naive",
                "path": "sweep",
                "perm": perm,
                **_diff_codes(codes, got),
            }
    return None


def check_mc_sampler(inst: Instance):
    """Uniform sampler vs an inline single-draw reference.

    The uniform family must be *one* raw draw of the batch-keyed rng —
    any post-processing (like the ``mc-sampler-tail-drop`` mutant's
    silent removal of all-ones configurations) biases every downstream
    basin-mass estimate while leaving the step kernels bit-exact, so the
    stream itself is diffed, not just the dynamics.
    """
    from repro.mc import sampler
    from repro.qa.generators import mc_applicable

    if mc_applicable(inst.spec) is not None:
        return None
    n = inst.ca.n
    lanes = 4096
    got = sampler.sample_planes("uniform", n, lanes, inst.spec.seed, 0)
    rng = np.random.default_rng(
        np.random.SeedSequence([int(inst.spec.seed), 0])
    )
    expected = rng.integers(
        0,
        np.iinfo(np.uint64).max,
        size=(n, lanes // 64),
        dtype=np.uint64,
        endpoint=True,
    )
    if not np.array_equal(got, expected):
        words = np.flatnonzero((got != expected).any(axis=0))[:_MAX_DIFF_CODES]
        return {
            "vs": "reference_rng_stream",
            "family": "uniform",
            "mismatching_words": int(
                np.count_nonzero((got != expected).any(axis=0))
            ),
            "words": [int(w) for w in words],
        }
    return None


from repro.qa.oracles import ORACLE_CHECKS  # noqa: E402  (registry assembly)

DIFFERENTIAL_CHECKS = {
    "differential.step_all": check_step_all,
    "differential.node_successors": check_node_successors,
    "differential.phase_digest": check_phase_digest,
    "differential.trip_resume": check_trip_resume,
    "differential.schedule_step": check_schedule_step,
    "differential.attractor_census": check_attractor_census,
    "differential.mc_step": check_mc_step,
    "differential.mc_sampler": check_mc_sampler,
}

#: full registry, in deterministic execution order
CHECKS = {**DIFFERENTIAL_CHECKS, **ORACLE_CHECKS}


def run_check(
    spec: InstanceSpec, name: str, backends: list[str] | None = None
):
    """Run one named check on a fresh instance; violation dict or None."""
    if name not in CHECKS:
        raise ValueError(f"unknown qa check {name!r}")
    inst = Instance(spec, backends)
    if not inst.backends:
        return None
    return CHECKS[name](inst)


def run_first_violation(
    spec: InstanceSpec, backends: list[str] | None = None
):
    """Run all checks in order; return ``(name, violation)`` or None."""
    inst = Instance(spec, backends)
    if not inst.backends:
        return None
    for name, fn in CHECKS.items():
        violation = fn(inst)
        if violation is not None:
            return name, violation
    return None


def run_all_checks(
    spec: InstanceSpec, backends: list[str] | None = None
) -> dict:
    """All checks on one instance: name -> violation|None (tests/debug)."""
    inst = Instance(spec, backends)
    return {name: fn(inst) for name, fn in CHECKS.items()}
