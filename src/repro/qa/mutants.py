"""Known-bad mutant kernels: the fuzzer's self-test.

Each mutant monkey-patches one backend kernel with a subtly wrong
variant of the real implementation — the kind of off-by-one a kernel
rewrite could plausibly introduce.  ``repro fuzz --self-test`` runs the
fuzz loop with each mutant active and demands that the differential
harness catches it and shrinks the counterexample to ``n <= 6``; a
mutant that survives means the oracles have a blind spot.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

import repro.analysis.quotient as quotient
import repro.mc.sampler as mc_sampler
import repro.perf.attractor as attractor
import repro.perf.bitplane as bitplane
from repro.perf.table import TableBackend

__all__ = ["MUTANTS", "active_mutant"]


def _mutant_table_wrap(cls=TableBackend):
    """Off-by-one in the table backend's wrapped-window rotation."""
    original = cls._wcodes

    def _wcodes(self, i, codes):
        rot = self._rot[i]
        if rot is not None:
            shift, k = rot
            if shift != 0 and shift + k > self.ca.n:
                mask = np.int64((1 << k) - 1)
                low = codes & np.int64((1 << shift) - 1)
                # BUG: rotates one bit short of the true wrap distance.
                rotated = (codes >> shift) | (
                    low << max(0, self.ca.n - shift - 1)
                )
                return rotated & mask
        return original(self, i, codes)

    return [(cls, "_wcodes", _wcodes)]


def _mutant_table_stale_bit(cls=TableBackend):
    """Node successor XORs the new bit instead of replacing the old one.

    Patches both node-successor kernels (the single-row chunk path and
    the shared one-pass sweep), as a copy-paste bug plausibly would.
    """

    def node_successors_range(self, i, lo, hi):
        codes = np.arange(lo, hi, dtype=np.int64)
        new_bits = self._luts[i][self._wcodes(i, codes)].astype(np.int64)
        # BUG: flips bit i whenever the new bit is 1, rather than
        # whenever it differs from the old bit.
        return codes ^ (new_bits << i)

    def sweep_all_nodes_range(self, lo, hi, out):
        for i in range(self.ca.n):
            out[i] = node_successors_range(self, i, lo, hi)

    return [
        (cls, "node_successors_range", node_successors_range),
        (cls, "sweep_all_nodes_range", sweep_all_nodes_range),
    ]


def _mutant_bitplane_parity_drop():
    """Bit-plane parity kernel forgets the last input plane.

    Patches the shared module-level evaluator in *both* namespaces that
    bind it (:mod:`repro.perf.bitplane` and the attractor kernel's
    imported reference), as a bad edit to the shared lowering would hit
    both the sweep backend and the attractor-direct path.
    """
    original = bitplane.eval_bit_kernel

    def eval_bit_kernel(kernel, inputs, nwords):
        kind, _ = kernel
        if kind == "parity" and len(inputs) > 1:
            out = np.zeros(nwords, dtype=np.uint64)
            for plane in inputs[:-1]:  # BUG: one plane short
                out ^= plane
            return out
        return original(kernel, inputs, nwords)

    return [
        (bitplane, "eval_bit_kernel", eval_bit_kernel),
        (attractor, "eval_bit_kernel", eval_bit_kernel),
    ]


def _mutant_quotient_reflection_drop():
    """Dihedral quotient forgets to minimize over reflections.

    Keeps both partners of every chiral necklace pair as "orbit
    representatives" while :func:`~repro.analysis.quotient.orbit_weights`
    still assigns full dihedral weights — so the census overcounts
    exactly where reflection symmetry mattered.  The smallest chiral
    binary necklace pair lives at ``n = 6`` (e.g. ``001011``/``001101``),
    which is what lets the self-test shrink this below the n <= 6 bar.
    """

    def _reflection_filter(reps, n):
        return reps  # BUG: chiral partners both survive as reps

    return [(quotient, "_reflection_filter", _reflection_filter)]


def _mutant_mc_sampler_tail_drop():
    """Uniform MC sampler silently drops the all-ones tail.

    Clears every lane whose sampled configuration is all-ones — a
    plausible "mask off the sentinel value" bug in the packer.  The step
    kernels stay bit-exact on whatever states remain, so only a check
    that diffs the *sample stream* itself (``differential.mc_sampler``)
    can see the bias; at the fuzzer's n <= 8 the all-ones configuration
    carries real probability mass, so a 4096-lane draw exposes it with
    near certainty.
    """
    original = mc_sampler.sample_planes

    def sample_planes(family, n, lanes, seed, batch_lo, **kwargs):
        planes = original(family, n, lanes, seed, batch_lo, **kwargs)
        if family == "uniform":
            # BUG: lanes that drew the all-ones configuration are zeroed.
            allones = np.bitwise_and.reduce(planes, axis=0)
            planes = planes & ~allones
        return planes

    return [(mc_sampler, "sample_planes", sample_planes)]


#: name -> patch factory returning [(class-or-module, attribute,
#: replacement), ...]
MUTANTS = {
    "table-wrap-rotation": _mutant_table_wrap,
    "table-stale-bit": _mutant_table_stale_bit,
    "bitplane-parity-drop": _mutant_bitplane_parity_drop,
    "quotient-reflection-drop": _mutant_quotient_reflection_drop,
    "mc-sampler-tail-drop": _mutant_mc_sampler_tail_drop,
}


@contextmanager
def active_mutant(name: str):
    """Install a named mutant kernel for the duration of the context."""
    if name not in MUTANTS:
        raise ValueError(f"unknown mutant {name!r}")
    patches = MUTANTS[name]()
    originals = [(cls, attr, cls.__dict__[attr]) for cls, attr, _ in patches]
    for cls, attr, replacement in patches:
        setattr(cls, attr, replacement)
    try:
        yield name
    finally:
        for cls, attr, original in originals:
            setattr(cls, attr, original)
