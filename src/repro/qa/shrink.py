"""Greedy counterexample shrinking.

Given a spec that fails a named check, repeatedly try simpler variants —
fewer nodes, radius 1, homogeneous rules, rules replaced by MAJORITY or
XOR, canonical sweep schedules — keeping a variant only if the check
still fails *deterministically* (two fresh re-runs produce the identical
violation).  The candidate order is fixed, so the same failing spec
always shrinks to the same minimal finding.
"""

from __future__ import annotations

from repro.qa.differential import run_check
from repro.qa.findings import canonical_json
from repro.qa.generators import InstanceSpec, build_automaton

__all__ = ["shrink_spec", "shrink_candidates"]

#: overall cap on candidate evaluations per shrink (each evaluation runs
#: the failing check twice)
MAX_ATTEMPTS = 200


def _with(spec: InstanceSpec, **changes) -> InstanceSpec:
    data = spec.to_dict()
    data.update(changes)
    return InstanceSpec.from_dict(data)


def _shrink_schedule_to_n(schedule: dict, n: int) -> dict:
    """Remap a schedule spec onto the first ``n`` nodes."""
    kind = schedule["kind"]
    if kind == "perm":
        perm = [i for i in schedule["perm"] if i < n]
        return {"kind": "perm", "perm": perm or list(range(n))}
    if kind == "word":
        word = [i for i in schedule["word"] if i < n]
        return {"kind": "word", "word": word or [0]}
    if kind == "block":
        partition = [
            [i for i in block if i < n] for block in schedule["partition"]
        ]
        partition = [b for b in partition if b]
        if sorted(i for b in partition for i in b) != list(range(n)):
            partition = [[i] for i in range(n)]
        return {"kind": "block", "partition": partition}
    return dict(schedule)


def _shrink_rule_to_width(rule: dict, width: int) -> dict:
    """Project a rule spec down to a smaller window width."""
    kind = rule["kind"]
    if kind == "totalistic":
        return {"kind": "totalistic", "profile": rule["profile"][: width + 1]}
    if kind == "table":
        return {"kind": "table", "table": rule["table"][: 1 << width]}
    if kind == "threshold":
        return {
            "kind": "threshold",
            "threshold": min(int(rule["threshold"]), width + 1),
        }
    if kind == "wolfram" and width != 3:
        return {"kind": "majority"}
    return dict(rule)


def shrink_candidates(spec: InstanceSpec):
    """Simpler variants of ``spec``, most aggressive first."""
    min_n = 2 * spec.radius + 1 if spec.space == "ring" else 1
    min_n = max(min_n, 2)
    # 1. shrink n (big halving step first, then decrement)
    for new_n in dict.fromkeys([max(min_n, spec.n // 2), spec.n - 1]):
        if min_n <= new_n < spec.n:
            rules = spec.rules
            if len(rules) > 1:
                rules = rules[:new_n]
            yield _with(
                spec,
                n=new_n,
                rules=rules,
                schedule=_shrink_schedule_to_n(spec.schedule, new_n),
            )
    # 2. radius 2 -> 1 (projects every rule to the narrower window)
    if spec.radius > 1:
        new_width = 2 * 1 + (1 if spec.memory else 0)
        yield _with(
            spec,
            radius=1,
            rules=[_shrink_rule_to_width(r, new_width) for r in spec.rules],
        )
    # 3. heterogeneous -> homogeneous
    if len(spec.rules) > 1:
        yield _with(spec, rules=[spec.rules[0]])
    # 4. simplify rules toward MAJORITY, then XOR
    for target in ({"kind": "majority"}, {"kind": "xor"}):
        if any(r != target for r in spec.rules):
            yield _with(spec, rules=[dict(target)] * len(spec.rules))
    # 5. canonical sweep schedule, then shorter words
    identity = {"kind": "perm", "perm": list(range(spec.n))}
    if spec.schedule != identity:
        yield _with(spec, schedule=identity)
    if spec.schedule["kind"] == "word" and len(spec.schedule["word"]) > 1:
        word = spec.schedule["word"]
        yield _with(spec, schedule={"kind": "word", "word": word[: len(word) // 2]})


def _fails_deterministically(
    spec: InstanceSpec, check: str, backends
) -> bool:
    try:
        build_automaton(spec)
    except (ValueError, TypeError):
        return False
    first = run_check(spec, check, backends)
    if first is None:
        return False
    second = run_check(spec, check, backends)
    return (
        second is not None
        and canonical_json(first) == canonical_json(second)
    )


def shrink_spec(
    spec: InstanceSpec,
    check: str,
    backends: list[str] | None = None,
    max_attempts: int = MAX_ATTEMPTS,
) -> tuple[InstanceSpec, int]:
    """Greedily minimise ``spec`` for ``check``; (minimal spec, steps)."""
    current = spec
    steps = 0
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in shrink_candidates(current):
            attempts += 1
            if _fails_deterministically(candidate, check, backends):
                current = candidate
                steps += 1
                improved = True
                break
            if attempts >= max_attempts:
                break
    return current, steps
