"""Seeded random CA instances for differential fuzzing.

An :class:`InstanceSpec` is a plain-JSON description of one fuzz case —
space, size, rule(s), schedule — explicit enough that the shrinker can
edit any field and a ``finding.json`` can rebuild the exact automaton
years later.  Sampling is driven by a :class:`numpy.random.Generator`
seeded from the spec's own seed, and sizes are drawn *adaptively under a
Budget*: the generator never proposes an instance whose full sweep set
(``(n+2) * 2**n`` states and their arrays) would blow the ambient
ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.automaton import CellularAutomaton
from repro.core.budget import Budget, resolve_budget
from repro.core.heterogeneous import HeterogeneousCA
from repro.core.rules import (
    MajorityRule,
    SimpleThresholdRule,
    TableRule,
    TotalisticRule,
    UpdateRule,
    WolframRule,
    XorRule,
)
from repro.core.schedules import (
    BlockSequential,
    FixedPermutation,
    FixedWord,
    RandomPermutationSweeps,
    UpdateSchedule,
)
from repro.spaces.line import Line, Ring

__all__ = [
    "InstanceSpec",
    "build_rule",
    "build_schedule",
    "build_automaton",
    "sample_spec",
    "max_feasible_n",
    "attractor_applicable",
    "mc_applicable",
    "MIN_N",
    "DEFAULT_MAX_N",
]

#: smallest instance the sampler proposes (radius-2 rings need 2r+1 = 5)
MIN_N = 4
#: largest instance the sampler proposes when the budget allows it —
#: 2**8 configurations keeps the scalar step_naive oracle a few ms/case
DEFAULT_MAX_N = 8


@dataclass
class InstanceSpec:
    """A fully explicit, JSON-serialisable fuzz instance."""

    seed: int
    space: str  #: "ring" | "line"
    n: int
    radius: int
    memory: bool
    rules: list  #: rule spec dicts; length 1 = homogeneous, length n = per-node
    schedule: dict  #: schedule spec dict
    def to_dict(self) -> dict:
        return {
            "seed": int(self.seed),
            "space": self.space,
            "n": int(self.n),
            "radius": int(self.radius),
            "memory": bool(self.memory),
            "rules": [dict(r) for r in self.rules],
            "schedule": dict(self.schedule),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InstanceSpec":
        return cls(
            seed=int(data["seed"]),
            space=str(data["space"]),
            n=int(data["n"]),
            radius=int(data["radius"]),
            memory=bool(data["memory"]),
            rules=[dict(r) for r in data["rules"]],
            schedule=dict(data["schedule"]),
        )

    @property
    def width(self) -> int:
        """Uniform window width of this instance."""
        return 2 * self.radius + (1 if self.memory else 0)

    def describe(self) -> str:
        kinds = ",".join(sorted({r["kind"] for r in self.rules}))
        return (
            f"{self.space}(n={self.n},r={self.radius},"
            f"mem={int(self.memory)}) rules[{kinds}] "
            f"sched[{self.schedule['kind']}]"
        )


# -- builders ------------------------------------------------------------------


def build_rule(spec: dict, width: int) -> UpdateRule:
    """Instantiate one rule spec at the instance's window width."""
    kind = spec["kind"]
    if kind == "majority":
        return MajorityRule()
    if kind == "threshold":
        return SimpleThresholdRule(int(spec["threshold"]))
    if kind == "xor":
        return XorRule()
    if kind == "totalistic":
        return TotalisticRule(list(spec["profile"]))
    if kind == "wolfram":
        return WolframRule(int(spec["number"]))
    if kind == "table":
        return TableRule(list(spec["table"]), name=f"FuzzTable(k={width})")
    raise ValueError(f"unknown rule kind {kind!r}")


def build_schedule(spec: dict, n: int) -> UpdateSchedule:
    """Instantiate a schedule spec for ``n`` nodes."""
    kind = spec["kind"]
    if kind == "perm":
        return FixedPermutation(list(spec["perm"]))
    if kind == "word":
        return FixedWord(list(spec["word"]))
    if kind == "block":
        return BlockSequential([list(b) for b in spec["partition"]])
    if kind == "sweeps":
        return RandomPermutationSweeps(seed=int(spec["seed"]))
    raise ValueError(f"unknown schedule kind {kind!r}")


def build_automaton(spec: InstanceSpec, backend: str | None = None):
    """Rebuild the automaton an :class:`InstanceSpec` describes."""
    if spec.space == "ring":
        space = Ring(spec.n, radius=spec.radius)
    elif spec.space == "line":
        space = Line(spec.n, radius=spec.radius)
    else:
        raise ValueError(f"unknown space kind {spec.space!r}")
    width = spec.width
    if len(spec.rules) == 1:
        rule = build_rule(spec.rules[0], width)
        return CellularAutomaton(
            space, rule, memory=spec.memory, backend=backend
        )
    if len(spec.rules) != spec.n:
        raise ValueError(
            f"heterogeneous spec needs 1 or {spec.n} rules, got "
            f"{len(spec.rules)}"
        )
    # Share rule objects across nodes with identical specs so backend
    # LUT deduplication (keyed by id) still applies.
    cache: dict[bytes, UpdateRule] = {}
    rules = []
    for rspec in spec.rules:
        key = repr(sorted(rspec.items())).encode()
        if key not in cache:
            cache[key] = build_rule(rspec, width)
        rules.append(cache[key])
    return HeterogeneousCA(space, rules, memory=spec.memory, backend=backend)


def attractor_applicable(spec: InstanceSpec) -> str | None:
    """``None`` when the attractor kernel can classify this instance.

    The spec-level gate for the ``differential.attractor_census`` check:
    every sampled rule kind lowers to a bitwise kernel, so in practice
    only exotic hosts (big-endian) or oversized widths opt out — the
    attractor check mode runs on essentially every fuzz case.
    """
    from repro.perf.attractor import AttractorKernel

    return AttractorKernel.supports(build_automaton(spec))


def mc_applicable(spec: InstanceSpec) -> str | None:
    """``None`` when the Monte-Carlo kernel can drive this instance.

    The spec-level gate for the ``differential.mc_*`` checks: the MC
    kernel needs a homogeneous rule on a ring (its O(1)-setup stepping
    derives windows analytically from the radius) that lowers to a
    bitwise kernel.
    """
    from repro.mc.kernel import McKernel

    return McKernel.supports(build_automaton(spec))


# -- sampling ------------------------------------------------------------------


def max_feasible_n(budget: Budget | None, ceiling: int = DEFAULT_MAX_N) -> int:
    """Largest ``n <= ceiling`` whose full sweep set fits the budget.

    One case holds the parallel successor array plus the ``(n, 2**n)``
    node-successor matrix, so the projected footprint is about
    ``(n + 2) * 8 * 2**n`` bytes and ``(n + 2) * 2**n`` states.
    """
    budget = resolve_budget(budget)
    for n in range(ceiling, MIN_N - 1, -1):
        states = (n + 2) * (1 << n)
        if budget.over(pending_bytes=8 * states, pending_states=states) is None:
            return n
    return MIN_N


def _sample_rule(rng: np.random.Generator, width: int) -> dict:
    kinds = ["majority", "threshold", "xor", "totalistic", "table"]
    weights = [0.22, 0.22, 0.16, 0.2, 0.2]
    if width == 3:
        kinds.append("wolfram")
        weights.append(0.1)
    weights = np.asarray(weights) / np.sum(weights)
    kind = str(rng.choice(kinds, p=weights))
    if kind == "threshold":
        return {"kind": "threshold", "threshold": int(rng.integers(0, width + 2))}
    if kind == "totalistic":
        profile = rng.integers(0, 2, size=width + 1)
        return {"kind": "totalistic", "profile": [int(b) for b in profile]}
    if kind == "table":
        table = rng.integers(0, 2, size=1 << width)
        return {"kind": "table", "table": [int(b) for b in table]}
    if kind == "wolfram":
        return {"kind": "wolfram", "number": int(rng.integers(0, 256))}
    return {"kind": kind}


def _sample_schedule(rng: np.random.Generator, n: int) -> dict:
    kind = str(
        rng.choice(["perm", "word", "block", "sweeps"], p=[0.4, 0.2, 0.2, 0.2])
    )
    if kind == "perm":
        return {"kind": "perm", "perm": [int(i) for i in rng.permutation(n)]}
    if kind == "word":
        length = int(rng.integers(n, 2 * n + 1))
        return {
            "kind": "word",
            "word": [int(i) for i in rng.integers(0, n, size=length)],
        }
    if kind == "block":
        labels = rng.integers(0, max(2, n // 2), size=n)
        partition = [
            [int(i) for i in np.flatnonzero(labels == lab)]
            for lab in np.unique(labels)
        ]
        return {"kind": "block", "partition": partition}
    return {"kind": "sweeps", "seed": int(rng.integers(0, 1 << 31))}


def sample_spec(
    seed: int,
    budget: Budget | None = None,
    max_n: int | None = None,
) -> InstanceSpec:
    """Draw one instance spec, deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    ceiling = max_n if max_n is not None else DEFAULT_MAX_N
    hi = max_feasible_n(budget, ceiling=max(MIN_N, ceiling))
    n = int(rng.integers(MIN_N, hi + 1))
    space = "ring" if rng.random() < 0.6 else "line"
    radius = 2 if (rng.random() < 0.2 and n >= 5) else 1
    if space == "ring" and n < 2 * radius + 1:
        radius = 1
    memory = bool(rng.random() < 0.7)
    width = 2 * radius + (1 if memory else 0)
    if rng.random() < 0.15:
        rules = [_sample_rule(rng, width) for _ in range(n)]
    else:
        rules = [_sample_rule(rng, width)]
    schedule = _sample_schedule(rng, n)
    return InstanceSpec(
        seed=int(seed),
        space=space,
        n=n,
        radius=radius,
        memory=memory,
        rules=rules,
        schedule=schedule,
    )
