"""Low-level utilities shared across the library.

The modules here are deliberately dependency-light: :mod:`repro.util.bitops`
implements the bit-packed configuration codecs the phase-space machinery is
built on, :mod:`repro.util.orders` provides schedule-word helpers, and
:mod:`repro.util.validation` centralises argument checking so error messages
are uniform across the public API.
"""

from repro.util.bitops import (
    all_configurations,
    bits_to_int,
    int_to_bits,
    popcount,
    popcount_array,
    rotate_bits,
)
from repro.util.orders import (
    all_words,
    cyclic_word,
    is_b_fair,
    is_permutation_word,
    random_fair_stream,
    sweep_stream,
)
from repro.util.validation import (
    check_positive,
    check_probability,
    check_state_vector,
)

__all__ = [
    "all_configurations",
    "bits_to_int",
    "int_to_bits",
    "popcount",
    "popcount_array",
    "rotate_bits",
    "all_words",
    "cyclic_word",
    "is_b_fair",
    "is_permutation_word",
    "random_fair_stream",
    "sweep_stream",
    "check_positive",
    "check_probability",
    "check_state_vector",
]
