"""Uniform argument validation helpers.

Centralising the checks keeps error messages consistent and lets the hot
paths validate once at the boundary instead of deep inside vectorized loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_state_vector",
    "check_node_index",
    "check_memory_budget",
]


def check_positive(value: int, name: str) -> int:
    """Raise ``ValueError`` unless ``value`` is a positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative(value: int, name: str) -> int:
    """Raise ``ValueError`` unless ``value`` is a non-negative integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]``."""
    p = float(value)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return p


def check_state_vector(state, n: int) -> np.ndarray:
    """Coerce ``state`` to a length-``n`` ``uint8`` 0/1 vector.

    Accepts any 0/1 sequence; always returns a fresh contiguous array so
    callers may mutate the result without aliasing the input.
    """
    arr = np.array(state, dtype=np.uint8, copy=True).ravel()
    if arr.size != n:
        raise ValueError(f"state has {arr.size} entries, expected {n}")
    if not np.all(arr <= 1):
        raise ValueError("state entries must be 0 or 1")
    return arr


def check_memory_budget(n: int, mem_bytes: int | None, name: str = "--n") -> int:
    """Reject ``n`` when even the bare ``2**n`` successor table busts the ceiling.

    The governed builders can *truncate* analysis structures and stream
    chunks, but the successor table itself (8 bytes/state) is the floor:
    if that alone exceeds ``mem_bytes``, no amount of graceful degradation
    produces a useful partial result, so fail fast with the remedies.
    ``mem_bytes=None`` (no ceiling) always passes.
    """
    n = check_positive(n, name)
    if mem_bytes is None:
        return n
    # Lazy import: validation sits below repro.core in the import graph.
    from repro.core.budget import estimate_succ_bytes, format_bytes

    need = estimate_succ_bytes(n)
    if need > mem_bytes:
        raise ValueError(
            f"{name}={n} needs {format_bytes(need)} just for its 2**{n}-entry "
            f"successor table, over the {format_bytes(mem_bytes)} memory "
            f"ceiling — raise --budget-mem, or sample trajectories with "
            f"'simulate' instead of enumerating the full phase space"
        )
    return n


def check_node_index(i: int, n: int) -> int:
    """Raise unless ``i`` is a valid node index for an ``n``-node automaton."""
    if not isinstance(i, (int, np.integer)) or isinstance(i, bool):
        raise TypeError(f"node index must be an integer, got {type(i).__name__}")
    if not 0 <= i < n:
        raise ValueError(f"node index {i} out of range for {n} nodes")
    return int(i)
