"""Bit-packed configuration codecs.

A global configuration of an ``n``-node Boolean automaton is a vector in
``{0, 1}^n``.  Phase-space algorithms enumerate all ``2**n`` of them, so we
represent configurations both ways:

* as ``numpy.uint8`` vectors (the simulation engines' working format), and
* as Python/NumPy integers whose bit ``i`` is the state of node ``i``
  (the phase-space format: a configuration is an index into dense arrays).

The little-endian convention (node 0 -> bit 0) is used everywhere in the
library; :func:`bits_to_int` and :func:`int_to_bits` are the only places the
convention is spelled out.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "all_configurations",
    "popcount",
    "popcount_array",
    "rotate_bits",
    "rotate_bits_array",
    "reverse_bits",
    "reverse_bits_array",
    "canonical_ring_form",
    "config_str",
    "parse_config",
]


def bits_to_int(bits: Sequence[int] | np.ndarray) -> int:
    """Pack a 0/1 vector into an integer, node ``i`` -> bit ``i``.

    >>> bits_to_int([1, 0, 1])
    5
    """
    value = 0
    for i, b in enumerate(bits):
        if b:
            value |= 1 << i
    return value


def int_to_bits(value: int, n: int) -> np.ndarray:
    """Unpack an integer into a length-``n`` ``uint8`` vector.

    >>> int_to_bits(5, 4)
    array([1, 0, 1, 0], dtype=uint8)
    """
    if value < 0:
        raise ValueError(f"configuration code must be non-negative, got {value}")
    if n < 0:
        raise ValueError(f"number of nodes must be non-negative, got {n}")
    if value >> n:
        raise ValueError(f"code {value} does not fit in {n} bits")
    out = np.empty(n, dtype=np.uint8)
    for i in range(n):
        out[i] = (value >> i) & 1
    return out


def all_configurations(n: int) -> np.ndarray:
    """Matrix of all ``2**n`` configurations, shape ``(2**n, n)``, ``uint8``.

    Row ``c`` is ``int_to_bits(c, n)``; the row index doubles as the packed
    configuration code.  Memory is ``2**n * n`` bytes, so this is intended
    for exhaustive phase-space work at ``n <= ~22``.
    """
    if n < 0:
        raise ValueError(f"number of nodes must be non-negative, got {n}")
    if n > 26:
        raise ValueError(
            f"refusing to materialise 2**{n} configurations; "
            "use streaming APIs for large n"
        )
    codes = np.arange(1 << n, dtype=np.uint32 if n <= 31 else np.uint64)
    return ((codes[:, None] >> np.arange(n, dtype=codes.dtype)) & 1).astype(np.uint8)


def popcount(value: int) -> int:
    """Number of set bits of a non-negative integer."""
    if value < 0:
        raise ValueError(f"popcount of negative value {value}")
    return int(value).bit_count()


def popcount_array(codes: np.ndarray) -> np.ndarray:
    """Vectorized popcount over an integer array.

    Uses the SWAR reduction on 64-bit lanes, which is branch-free and keeps
    everything inside NumPy (no Python-level loop over elements).
    """
    v = codes.astype(np.uint64, copy=True)
    v = v - ((v >> np.uint64(1)) & np.uint64(0x5555555555555555))
    v = (v & np.uint64(0x3333333333333333)) + (
        (v >> np.uint64(2)) & np.uint64(0x3333333333333333)
    )
    v = (v + (v >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((v * np.uint64(0x0101010101010101)) >> np.uint64(56)).astype(np.int64)


def rotate_bits(value: int, n: int, shift: int) -> int:
    """Cyclically rotate the low ``n`` bits of ``value`` left by ``shift``.

    Rotating a ring configuration corresponds to the ring's translation
    symmetry; phase-space code uses this to quotient orbits by rotation.
    """
    if n <= 0:
        raise ValueError(f"bit width must be positive, got {n}")
    if value >> n:
        raise ValueError(f"code {value} does not fit in {n} bits")
    shift %= n
    mask = (1 << n) - 1
    return ((value << shift) | (value >> (n - shift))) & mask


def reverse_bits(value: int, n: int) -> int:
    """Reverse the low ``n`` bits of ``value`` (the ring's mirror symmetry)."""
    if n <= 0:
        raise ValueError(f"bit width must be positive, got {n}")
    if value >> n:
        raise ValueError(f"code {value} does not fit in {n} bits")
    out = 0
    for i in range(n):
        if (value >> i) & 1:
            out |= 1 << (n - 1 - i)
    return out


#: reversed-byte lookup: _BYTE_REV[b] is b with its 8 bits mirrored
_BYTE_REV = np.array(
    [int(f"{b:08b}"[::-1], 2) for b in range(256)], dtype=np.uint64
)


def rotate_bits_array(codes: np.ndarray, n: int, shift: int) -> np.ndarray:
    """Vectorized :func:`rotate_bits` over a ``uint64`` code array."""
    if n <= 0 or n > 64:
        raise ValueError(f"bit width must be in 1..64, got {n}")
    shift %= n
    v = codes.astype(np.uint64, copy=False)
    if shift == 0:
        return v.copy()
    mask = np.uint64((1 << n) - 1) if n < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    return ((v << np.uint64(shift)) | (v >> np.uint64(n - shift))) & mask


def reverse_bits_array(codes: np.ndarray, n: int) -> np.ndarray:
    """Vectorized :func:`reverse_bits` over a ``uint64`` code array.

    Mirrors each whole 64-bit word via the byte-reversal table, then
    shifts the result down so the low ``n`` bits land back at bit 0.
    """
    if n <= 0 or n > 64:
        raise ValueError(f"bit width must be in 1..64, got {n}")
    v = codes.astype(np.uint64, copy=False)
    out = np.zeros_like(v)
    for byte in range(8):
        part = _BYTE_REV[((v >> np.uint64(8 * byte)) & np.uint64(0xFF)).astype(np.int64)]
        out |= part << np.uint64(8 * (7 - byte))
    if n < 64:
        out >>= np.uint64(64 - n)
    return out


def canonical_ring_form(
    codes: np.ndarray, n: int, reflections: bool = True
) -> np.ndarray:
    """Least code in each configuration's dihedral (or cyclic) orbit.

    The vectorized counterpart of
    :func:`repro.analysis.symmetry.canonical_code`: ``2n`` rotate/min
    passes over the whole array instead of a Python loop per code.
    """
    v = codes.astype(np.uint64, copy=False)
    best = v.copy()
    refl = reverse_bits_array(v, n) if reflections else None
    if refl is not None:
        np.minimum(best, refl, out=best)
    for shift in range(1, n):
        np.minimum(best, rotate_bits_array(v, n, shift), out=best)
        if refl is not None:
            np.minimum(best, rotate_bits_array(refl, n, shift), out=best)
    return best


def config_str(value: int, n: int) -> str:
    """Render a packed configuration as a left-to-right 0/1 string.

    Node 0 is the leftmost character, matching the paper's notation for
    configurations such as ``...010101...``.

    >>> config_str(5, 4)
    '1010'
    """
    return "".join("1" if (value >> i) & 1 else "0" for i in range(n))


def parse_config(text: str | Iterable[int]) -> np.ndarray:
    """Parse a 0/1 string (or iterable of bits) into a ``uint8`` vector.

    >>> parse_config("0110")
    array([0, 1, 1, 0], dtype=uint8)
    """
    if isinstance(text, str):
        bits = []
        for ch in text:
            if ch in "01":
                bits.append(int(ch))
            elif ch in " _,":
                continue
            else:
                raise ValueError(f"invalid character {ch!r} in configuration string")
        return np.array(bits, dtype=np.uint8)
    arr = np.asarray(list(text), dtype=np.uint8)
    if arr.ndim != 1 or not np.all((arr == 0) | (arr == 1)):
        raise ValueError("configuration must be a flat 0/1 sequence")
    return arr
