"""Schedule-word utilities for sequential automata.

A *schedule word* is a finite or infinite sequence of node indices saying
which node updates at each sequential step.  The paper's convergence claims
for threshold SCA require only that the word be *fair*: every node keeps
getting turns.  For finite words we use the quantitative version from the
paper's footnote 2 — a fixed upper bound ``B`` on the gap between successive
occurrences of any node (*B-fairness*).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "is_permutation_word",
    "is_b_fair",
    "fairness_bound",
    "cyclic_word",
    "all_words",
    "all_permutations",
    "sweep_stream",
    "random_fair_stream",
    "random_single_stream",
]


def is_permutation_word(word: Sequence[int], n: int) -> bool:
    """True if ``word`` is a permutation of ``0..n-1``."""
    return len(word) == n and sorted(word) == list(range(n))


def is_b_fair(word: Sequence[int], n: int, bound: int) -> bool:
    """Check B-fairness of a finite word.

    The word is ``bound``-fair for ``n`` nodes if every window of ``bound``
    consecutive letters contains every node at least once.  Windows that run
    past the end of the word are not checked (the word is treated as a finite
    prefix of an infinite schedule).
    """
    if bound <= 0:
        raise ValueError(f"fairness bound must be positive, got {bound}")
    if bound < n:
        return False  # a window shorter than n letters cannot contain n nodes
    word = list(word)
    full = set(range(n))
    for start in range(0, len(word) - bound + 1):
        if set(word[start : start + bound]) != full:
            return False
    return True


def fairness_bound(word: Sequence[int], n: int) -> int | None:
    """Smallest ``B`` such that the word is B-fair, or ``None`` if unfair.

    A finite word gets the bound implied by treating it as one period of a
    cyclic schedule: the maximum gap between consecutive occurrences of the
    same node, wrapping around.
    """
    word = list(word)
    if not word:
        return None
    positions: dict[int, list[int]] = {i: [] for i in range(n)}
    for t, node in enumerate(word):
        if node not in positions:
            raise ValueError(f"node {node} out of range for n={n}")
        positions[node].append(t)
    worst = 0
    length = len(word)
    for occ in positions.values():
        if not occ:
            return None
        gaps = [occ[0] + length - occ[-1]]
        gaps.extend(b - a for a, b in zip(occ, occ[1:]))
        worst = max(worst, max(gaps))
    return worst


def cyclic_word(word: Sequence[int], repetitions: int) -> list[int]:
    """Concatenate ``repetitions`` copies of a finite word."""
    if repetitions < 0:
        raise ValueError(f"repetitions must be non-negative, got {repetitions}")
    return list(word) * repetitions


def all_words(n: int, length: int) -> Iterator[tuple[int, ...]]:
    """All words of the given length over the alphabet ``0..n-1``.

    The count is ``n**length``; intended for exhaustive small-case proofs.
    """
    return itertools.product(range(n), repeat=length)


def all_permutations(n: int) -> Iterator[tuple[int, ...]]:
    """All permutations of ``0..n-1`` (there are ``n!``)."""
    return itertools.permutations(range(n))


def sweep_stream(n: int, perm: Sequence[int] | None = None) -> Iterator[int]:
    """Infinite schedule repeating one permutation forever.

    This is the canonical fair schedule (B-fair with ``B = 2n - 1``) used by
    the sequential-dynamical-systems literature [Barrett et al.].
    """
    order = list(range(n)) if perm is None else list(perm)
    if not is_permutation_word(order, n):
        raise ValueError(f"{order} is not a permutation of 0..{n - 1}")
    return itertools.cycle(order)


def random_fair_stream(n: int, rng: np.random.Generator) -> Iterator[int]:
    """Infinite fair schedule: an i.i.d. sequence of fresh random sweeps.

    Each block of ``n`` letters is a uniformly random permutation, so the
    stream is ``(2n - 1)``-fair with certainty — unlike uniform single-node
    sampling, which is only fair with probability one.
    """

    def gen() -> Iterator[int]:
        while True:
            yield from rng.permutation(n).tolist()

    return gen()


def random_single_stream(n: int, rng: np.random.Generator) -> Iterator[int]:
    """Infinite schedule of i.i.d. uniform node choices.

    This is the classical 'fully asynchronous' update discipline of
    Ingerson & Buvel [10]; it is almost-surely fair but not B-fair for any
    fixed B.
    """

    def gen() -> Iterator[int]:
        while True:
            yield int(rng.integers(n))

    return gen()
