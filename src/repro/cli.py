"""Command-line interface: ``repro-ca`` (or ``python -m repro``).

Subcommands
-----------
``list``
    Show the experiment registry (one entry per paper artifact).
``run E4 [E5 ...] [--json] [--timeout S] [--retries N] [--isolate] [--resume DIR]``
    Run experiments through the fault-tolerant harness and print their
    verdicts (``all`` runs everything).  Exit codes: 0 all hold, 1 some
    fail, 2 error/timeout/unknown id.  ``--resume DIR`` journals
    progress and skips experiments already completed there.
``simulate``
    Run a CA/SCA trajectory and print an ASCII space-time diagram.
``phase-space``
    Summarise (and optionally export as Graphviz DOT) the parallel or
    sequential phase space of a small automaton.
``mc``
    Streaming Monte-Carlo estimation of fixed-point / 2-cycle incidence,
    convergence time and energy descent for rings far beyond exact
    enumeration (n up to 10**6), with Wilson/Welford confidence
    intervals and a contract-validated ``repro-mc/1`` artifact.
``stats``
    Pretty-print the obs metrics snapshot (in-process, or from a run
    directory written via ``--artifacts-dir``); ``--format prom`` emits
    Prometheus textfile-collector exposition instead.
``runs``
    Query the cross-run sqlite index (``runs_index.sqlite``):
    ``index`` ingests artifact directories/files (all five dialects),
    ``list``/``show`` browse, ``gc`` prunes stale rows, and ``compare``
    diffs two runs' timer medians (exit 1 on a regression beyond
    ``--tolerance``).
``doctor RUN_DIR``
    Crash-recovery triage: validate every artifact in a run directory
    against its contract (:mod:`repro.contracts`), repair what is
    mechanically repairable (torn JSONL tails, a snapshot regenerable
    from its journal, a rebuildable sqlite index, stale sidecars) and
    quarantine the rest under ``RUN_DIR/quarantine/``.  ``--no-repair``
    reports only.  Exit codes: 0 consistent as found, 1 repaired (or,
    with ``--no-repair``, repairable), 2 corruption remains.
``tail``
    Follow a live or finished run's ``progress.jsonl`` heartbeats.
``fuzz``
    Seeded differential fuzzing of the sweep backends against the
    scalar oracle and the paper's theorems (``--self-test`` injects
    known-bad mutant kernels; ``--replay finding.json`` re-checks a
    recorded counterexample).

Every subcommand accepts ``--trace`` (record tracing spans into the
metrics registry), ``--artifacts-dir DIR`` (persist the run as
``manifest.json`` + ``events.jsonl`` + ``metrics.prom`` under DIR;
implies ``--trace``), ``--profile FILE`` (write a span profile in
speedscope or collapsed-stack format; implies ``--trace``) and
``--progress`` (stream throttled rate/ETA heartbeats to stderr, and to
``progress.jsonl`` when an artifacts dir is active).  ``REPRO_TRACE=1``
in the environment enables tracing globally.

Resource governance: the enumerating subcommands accept ``--budget-mem``
/ ``--budget-wall`` / ``--budget-states``; tripping a budget yields an
honest partial result and exit code 3 instead of an OOM kill.
``phase-space --resume DIR`` checkpoints the explored frontier on
truncation and resumes from it.  Ctrl-C exits 130 with a one-line
notice (no traceback); SIGTERM cancels cooperatively and exits 143.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from collections.abc import Sequence

import numpy as np

from repro import obs
from repro.obs.progress import PROGRESS_NAME
from repro.core.budget import (
    Budget,
    BudgetExceeded,
    CancelToken,
    parse_size,
    use_budget,
)
from repro.analysis.drawing import (
    nondet_phase_space_dot,
    phase_space_dot,
    render_spacetime,
)
from repro.core.automaton import CellularAutomaton
from repro.core.evolution import sequential_trajectory
from repro.core.rules import (
    MajorityRule,
    SimpleThresholdRule,
    UpdateRule,
    WolframRule,
    XorRule,
)
from repro.core.schedules import (
    FixedPermutation,
    RandomPermutationSweeps,
    RandomSingleNode,
    Synchronous,
    UpdateSchedule,
)
from repro.experiments import EXPERIMENTS
from repro.experiments.registry import get_experiment
from repro.harness import faults
from repro.perf.base import MAX_SWEEP_N, BackendUnsupported
from repro.perf.supervise import ShardFailed
from repro.spaces.base import FiniteSpace
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.line import Line, Ring
from repro.util.bitops import parse_config

__all__ = ["main", "build_parser"]


def _make_space(args: argparse.Namespace) -> FiniteSpace:
    if args.space == "ring":
        return Ring(args.n, radius=args.radius)
    if args.space == "line":
        return Line(args.n, radius=args.radius)
    if args.space == "grid":
        return Grid2D(args.rows, args.cols, torus=not args.bounded)
    if args.space == "hypercube":
        return Hypercube(args.dimension)
    raise ValueError(f"unknown space {args.space!r}")


def _make_rule(args: argparse.Namespace) -> UpdateRule:
    if args.rule == "majority":
        return MajorityRule()
    if args.rule == "xor":
        return XorRule()
    if args.rule == "threshold":
        if args.threshold is None:
            raise SystemExit("--threshold is required with --rule threshold")
        return SimpleThresholdRule(args.threshold)
    if args.rule == "wolfram":
        if args.wolfram is None:
            raise SystemExit("--wolfram is required with --rule wolfram")
        return WolframRule(args.wolfram)
    raise ValueError(f"unknown rule {args.rule!r}")


def _make_schedule(args: argparse.Namespace) -> UpdateSchedule:
    if args.schedule == "parallel":
        return Synchronous()
    if args.schedule == "sweep":
        return FixedPermutation()
    if args.schedule == "random-sweeps":
        return RandomPermutationSweeps(args.seed)
    if args.schedule == "random":
        return RandomSingleNode(args.seed)
    raise ValueError(f"unknown schedule {args.schedule!r}")


def _make_initial(args: argparse.Namespace, n: int) -> np.ndarray:
    if args.init == "random":
        return np.random.default_rng(args.seed).integers(0, 2, n).astype(np.uint8)
    if args.init == "alternating":
        return (np.arange(n) % 2).astype(np.uint8)
    if args.init == "one":
        state = np.zeros(n, dtype=np.uint8)
        state[n // 2] = 1
        return state
    state = parse_config(args.init)
    if state.size != n:
        raise SystemExit(f"--init has {state.size} bits, automaton has {n} nodes")
    return state


def _add_space_rule_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--space", default="ring",
                   choices=["ring", "line", "grid", "hypercube"])
    p.add_argument("--n", type=int, default=16, help="nodes (ring/line)")
    p.add_argument("--radius", type=int, default=1)
    p.add_argument("--rows", type=int, default=4)
    p.add_argument("--cols", type=int, default=4)
    p.add_argument("--bounded", action="store_true",
                   help="grid: fixed instead of toroidal boundary")
    p.add_argument("--dimension", type=int, default=3, help="hypercube dimension")
    p.add_argument("--rule", default="majority",
                   choices=["majority", "xor", "threshold", "wolfram"])
    p.add_argument("--threshold", type=int, default=None)
    p.add_argument("--wolfram", type=int, default=None)
    p.add_argument("--memoryless", action="store_true",
                   help="exclude the node's own state from its window")


def _add_backend_args(p: argparse.ArgumentParser) -> None:
    group = p.add_argument_group("sweep engine")
    group.add_argument("--backend", default=None,
                       choices=["auto", "bitplane", "table", "numpy",
                                "process"],
                       help="whole-space sweep kernel (default: the "
                            "REPRO_BACKEND env var, then 'auto' — bitplane "
                            "when the rule lowers to bitwise ops, table "
                            "otherwise, process sharding for large spaces "
                            "on multi-CPU hosts)")
    group.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes for the process backend "
                            "(default: REPRO_WORKERS, then the CPU count)")
    group.add_argument("--max-shard-retries", type=int, default=None,
                       metavar="N",
                       help="failed attempts before the process backend "
                            "quarantines a shard as poison and recomputes "
                            "it serially (default: "
                            "REPRO_MAX_SHARD_RETRIES, then 2)")


def _add_budget_args(p: argparse.ArgumentParser, resume: bool = False) -> None:
    group = p.add_argument_group("resource governance")
    group.add_argument("--budget-mem", default=None, metavar="SIZE",
                       help="memory ceiling for the enumerators, e.g. '256M' "
                            "or '2G' (deterministic charged-bytes accounting; "
                            "tripping yields an honest partial result, exit 3)")
    group.add_argument("--budget-wall", type=float, default=None,
                       metavar="SECONDS",
                       help="cooperative wall-clock deadline for the "
                            "enumerators")
    group.add_argument("--budget-states", type=int, default=None, metavar="N",
                       help="cap on enumerated states before truncating")
    if resume:
        group.add_argument("--resume", default=None, metavar="DIR",
                           help="frontier checkpoint directory: a truncated "
                                "build saves its explored prefix there and "
                                "the next run resumes from it disk-backed")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    group = p.add_argument_group("observability")
    group.add_argument("--trace", action="store_true",
                       help="record tracing spans into the metrics registry")
    group.add_argument("--trace-memory", action="store_true",
                       help="with --trace: annotate spans with tracemalloc "
                            "deltas (slower)")
    group.add_argument("--artifacts-dir", default=None, metavar="DIR",
                       help="persist this run as manifest.json + events.jsonl "
                            "under DIR (implies --trace)")
    group.add_argument("--profile", default=None, metavar="FILE",
                       help="write a span profile of this invocation to FILE "
                            "(implies --trace)")
    group.add_argument("--profile-format", default="speedscope",
                       choices=["speedscope", "collapsed"],
                       help="profile format: speedscope JSON (open at "
                            "speedscope.app) or collapsed stacks for "
                            "flamegraph.pl (default: speedscope)")
    group.add_argument("--progress", action="store_true",
                       help="stream rate/ETA heartbeats to stderr (and to "
                            "progress.jsonl under --artifacts-dir), throttled "
                            "to >= 1s apart")
    group.add_argument("--progress-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="minimum seconds between heartbeats (floored "
                            "at 1)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ca",
        description=(
            "Concurrency vs. sequential interleavings in 1-D threshold "
            "cellular automata (Tosic & Agha, IPPS 2004) — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the experiment registry")

    p_run = sub.add_parser(
        "run", help="run experiments by id",
        description=(
            "Run experiments through the fault-tolerant harness.  Exit "
            "code: 0 all hold, 1 some fail, 2 error/timeout/usage."
        ),
    )
    p_run.add_argument("ids", nargs="+",
                       help="experiment ids (E1..E22) or 'all'")
    p_run.add_argument("--json", action="store_true", dest="as_json")
    res = p_run.add_argument_group("resilience")
    res.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                     help="per-experiment wall-clock budget; exceeding it "
                          "records status 'timeout' instead of hanging")
    res.add_argument("--retries", type=int, default=0, metavar="N",
                     help="retry a failing experiment up to N times with "
                          "exponential backoff + jitter")
    res.add_argument("--isolate", action="store_true",
                     help="run each experiment in a subprocess so a "
                          "segfault/OOM cannot take down the batch")
    res.add_argument("--resume", default=None, metavar="DIR",
                     help="journal progress under DIR (journal.jsonl + "
                          "checkpoint.json) and skip experiments already "
                          "completed there")

    p_sim = sub.add_parser("simulate", help="print a space-time diagram")
    _add_space_rule_args(p_sim)
    p_sim.add_argument("--schedule", default="parallel",
                       choices=["parallel", "sweep", "random-sweeps", "random"])
    p_sim.add_argument("--steps", type=int, default=20)
    p_sim.add_argument("--init", default="random",
                       help="'random', 'alternating', 'one', or a 0/1 string")
    p_sim.add_argument("--seed", type=int, default=0)

    p_ps = sub.add_parser("phase-space", help="analyse a full phase space")
    _add_space_rule_args(p_ps)
    p_ps.add_argument("--mode", default="parallel",
                      choices=["parallel", "sequential"])
    p_ps.add_argument("--dot", default=None, metavar="FILE",
                      help="write a Graphviz DOT rendering to FILE")
    _add_backend_args(p_ps)
    _add_budget_args(p_ps, resume=True)

    p_census = sub.add_parser(
        "census", help="phase-space census of MAJORITY rings (E20)"
    )
    p_census.add_argument("--min-n", type=int, default=3)
    p_census.add_argument("--max-n", type=int, default=12)
    p_census.add_argument("--n", type=int, default=None,
                          help="census a single ring size (attractor-direct "
                               "by default: no materialized phase space, so "
                               "n may exceed the full-table ceiling)")
    p_census.add_argument("--mode", default="auto",
                          choices=["auto", "full", "attractor"],
                          help="'full' materializes each phase space (GoE / "
                               "transient columns, n <= 18); 'attractor' "
                               "counts fixed points and cycles directly via "
                               "the SWAR kernel over the dihedral quotient; "
                               "'auto' picks attractor when --n is given")
    _add_backend_args(p_census)
    _add_budget_args(p_census, resume=True)

    p_mc = sub.add_parser(
        "mc", help="streaming Monte-Carlo estimation (n up to 10**6)",
        description=(
            "Seeded streaming Monte-Carlo over homogeneous ring automata: "
            "configurations are sampled in 64-lane SWAR batches, each "
            "trajectory is classified as fixed point / 2-cycle / "
            "undecided, and incidence rates carry Wilson intervals "
            "(convergence time and energy descent carry exact-moment "
            "means).  Exit codes: 0 done (artifact validated when "
            "--artifact is given), 3 budget-truncated partial (frontier "
            "saved under --resume)."
        ),
    )
    p_mc.add_argument("--n", type=int, default=1000, help="ring size")
    p_mc.add_argument("--radius", type=int, default=1)
    p_mc.add_argument("--rule", default="majority",
                      choices=["majority", "xor", "threshold", "wolfram"])
    p_mc.add_argument("--threshold", type=int, default=None)
    p_mc.add_argument("--wolfram", type=int, default=None)
    p_mc.add_argument("--memoryless", action="store_true",
                      help="exclude the node's own state from its window")
    p_mc.add_argument("--schedule", default="parallel",
                      choices=["parallel", "sweep"],
                      help="synchronous macro steps, or one full "
                           "identity-order sequential sweep per macro step")
    p_mc.add_argument("--samples", type=int, default=1024,
                      help="sampled configurations (rounded up to whole "
                           "SWAR batches)")
    p_mc.add_argument("--horizon", type=int, default=None, metavar="STEPS",
                      help="macro-step cap per trajectory before a lane "
                           "counts as undecided (default 4n + 64)")
    p_mc.add_argument("--family", default="uniform",
                      choices=["uniform", "density", "perturb"],
                      help="sampling family: iid uniform bits, iid "
                           "Bernoulli(--density) bits, or --flips random "
                           "flips of the single-seed configuration")
    p_mc.add_argument("--density", type=float, default=0.5,
                      help="ones density for --family density")
    p_mc.add_argument("--flips", type=int, default=1,
                      help="random flips for --family perturb")
    p_mc.add_argument("--seed", type=int, default=0,
                      help="sample-stream seed (the same stream on every "
                           "machine, serial or sharded)")
    p_mc.add_argument("--artifact", default=None, metavar="FILE",
                      help="durably write the repro-mc/1 estimate artifact "
                           "to FILE and validate it against its contract")
    _add_backend_args(p_mc)
    _add_budget_args(p_mc, resume=True)

    p_survey = sub.add_parser(
        "survey", help="classify all 256 elementary rules (E21)"
    )
    p_survey.add_argument("--max-ring", type=int, default=7,
                          help="largest ring size checked per rule")
    p_survey.add_argument("--full-table", action="store_true",
                          help="print one line per rule, not just the summary")
    _add_backend_args(p_survey)
    _add_budget_args(p_survey)

    p_report = sub.add_parser(
        "report", help="run every experiment and emit a markdown report"
    )
    p_report.add_argument("--output", default=None, metavar="FILE",
                          help="write to FILE instead of stdout")

    p_stats = sub.add_parser(
        "stats", help="pretty-print the obs metrics snapshot"
    )
    p_stats.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the raw snapshot as JSON "
                              "(same as --format json)")
    p_stats.add_argument("--format", default=None, dest="stats_format",
                         choices=["text", "json", "prom"],
                         help="output format: human text (default), raw "
                              "JSON, or Prometheus textfile exposition")

    p_runs = sub.add_parser(
        "runs", help="query the cross-run sqlite index",
        description=(
            "Cross-run observability: ingest every artifact dialect the "
            "library emits (obs manifests, harness journals, budget "
            "frontiers, BENCH_*.json reports, qa findings) into one "
            "sqlite index and query it."
        ),
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    def _add_db_arg(rp: argparse.ArgumentParser) -> None:
        rp.add_argument("--db", default=None, metavar="FILE",
                        help="index database (default: $REPRO_RUNS_DB, then "
                             "./runs_index.sqlite)")

    r_index = runs_sub.add_parser(
        "index", help="ingest run directories / artifact files"
    )
    r_index.add_argument("paths", nargs="+", metavar="PATH",
                         help="run directories (walked recursively) or "
                              "artifact files (BENCH_*.json, finding-*.json, "
                              "manifest.json, ...)")
    r_list = runs_sub.add_parser("list", help="list indexed runs")
    r_list.add_argument("--kind", default=None,
                        choices=["manifest", "harness", "frontier", "bench",
                                 "finding"],
                        help="only runs of this artifact kind")
    r_show = runs_sub.add_parser("show", help="show one run in detail")
    r_show.add_argument("run", metavar="RUN",
                        help="run id (or unique prefix)")
    r_gc = runs_sub.add_parser(
        "gc", help="drop runs whose artifacts no longer exist on disk"
    )
    r_gc.add_argument("--keep", type=int, default=None, metavar="N",
                      help="additionally keep only the N most recently "
                           "indexed runs per kind")
    r_compare = runs_sub.add_parser(
        "compare", help="diff two runs' timer medians (exit 1 on regression)"
    )
    r_compare.add_argument("baseline", metavar="BASELINE",
                           help="baseline run id (or unique prefix)")
    r_compare.add_argument("current", metavar="CURRENT",
                           help="current run id (or unique prefix)")
    r_compare.add_argument("--tolerance", type=float, default=2.0,
                           help="fail when current median > tolerance * "
                                "baseline (default 2.0)")
    for rp in (r_index, r_list, r_show, r_gc, r_compare):
        _add_db_arg(rp)

    p_doctor = sub.add_parser(
        "doctor", help="validate, repair and quarantine a run directory",
        description=(
            "Classify every artifact under RUN_DIR against its versioned "
            "contract as valid / truncated-recoverable / corrupt, repair "
            "the recoverable (drop torn JSONL tails, regenerate "
            "checkpoint.json from the journal, rebuild "
            "runs_index.sqlite, refresh stale sidecars), quarantine the "
            "corrupt, and write doctor_report.json.  Exit codes: 0 "
            "consistent as found, 1 repaired into consistency, 2 "
            "corruption remains."
        ),
    )
    p_doctor.add_argument("run_dir", metavar="RUN_DIR",
                          help="run directory to triage (walked recursively)")
    p_doctor.add_argument("--no-repair", action="store_true",
                          help="classify and report only; change nothing")
    p_doctor.add_argument("--json", action="store_true", dest="doctor_json",
                          help="emit the machine-readable report on stdout")

    p_tail = sub.add_parser(
        "tail", help="follow a run's progress.jsonl heartbeats"
    )
    p_tail.add_argument("run_dir", metavar="RUN_DIR",
                        help="run directory written with --artifacts-dir")
    p_tail.add_argument("-f", "--follow", action="store_true",
                        help="keep polling for new heartbeats until the "
                             "final one (like tail -f)")
    p_tail.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS", dest="tail_timeout",
                        help="with --follow: give up after SECONDS")

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing + invariant oracles (qa)",
        description=(
            "Seeded, deterministic fuzzing: random CA instances are run "
            "through every applicable sweep backend and diffed against "
            "the scalar oracle and the paper's theorems; failures shrink "
            "to minimal replayable findings.  Exit code: 0 clean, 1 "
            "findings (or a missed mutant under --self-test), 2 usage, "
            "3 budget-truncated."
        ),
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="master seed; case c of seed s is the same "
                             "instance on every machine")
    p_fuzz.add_argument("--cases", type=int, default=200, metavar="N",
                        help="number of fuzz cases to run (default 200)")
    p_fuzz.add_argument("--backends", default="auto", metavar="LIST",
                        help="comma-separated sweep backends to diff "
                             "(default 'auto': every applicable serial "
                             "kernel — numpy, table, bitplane — plus "
                             "process sharding on hosts with >= 2 CPUs)")
    p_fuzz.add_argument("--shrink", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="greedily minimise failing instances "
                             "(--no-shrink keeps the raw counterexample)")
    p_fuzz.add_argument("--max-findings", type=int, default=8, metavar="N",
                        help="stop after N findings (default 8)")
    p_fuzz.add_argument("--findings-dir", default=None, metavar="DIR",
                        help="write each finding.json under DIR (default: "
                             "<artifacts-dir>/findings when --artifacts-dir "
                             "is given)")
    p_fuzz.add_argument("--self-test", action="store_true",
                        help="inject each known-bad mutant kernel and "
                             "require the oracles to catch it and shrink "
                             "the counterexample to n <= 6")
    p_fuzz.add_argument("--replay", default=None, metavar="FILE",
                        help="replay a finding.json instead of fuzzing: "
                             "exit 0 if it no longer reproduces, 1 if it "
                             "still fails")
    _add_budget_args(p_fuzz)

    for p in (p_list, p_run, p_sim, p_ps, p_census, p_mc, p_survey,
              p_report, p_stats, p_fuzz, r_index, r_list, r_show, r_gc,
              r_compare, p_tail):
        _add_obs_args(p)

    return parser


def _validate_args(args: argparse.Namespace) -> None:
    """Reject out-of-domain numeric flags at the boundary.

    Catching these here turns deep numpy/space-construction tracebacks
    into one-line usage errors.
    """
    for attr, minimum, flag in (
        ("n", 1, "--n"),
        ("radius", 1, "--radius"),
        ("rows", 1, "--rows"),
        ("cols", 1, "--cols"),
        ("dimension", 1, "--dimension"),
        ("steps", 0, "--steps"),
        ("retries", 0, "--retries"),
    ):
        value = getattr(args, attr, None)
        if value is not None and value < minimum:
            raise SystemExit(f"{flag} must be >= {minimum}, got {value}")
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {workers}")
    if workers is None and hasattr(args, "workers"):
        # No explicit count: the backend will consult REPRO_WORKERS —
        # reject a malformed value here as a usage error, not a traceback.
        from repro.perf.process import default_workers

        try:
            default_workers()
        except ValueError as err:
            raise SystemExit(str(err)) from err
    retries_flag = getattr(args, "max_shard_retries", None)
    if retries_flag is not None or hasattr(args, "max_shard_retries"):
        from repro.perf.supervise import (
            MAX_SHARD_RETRIES_ENV,
            default_max_shard_retries,
        )

        if retries_flag is not None:
            if retries_flag < 1:
                raise SystemExit(
                    f"--max-shard-retries must be >= 1, got {retries_flag}"
                )
            # Threaded to the backend via the env var so every construction
            # path (CellularAutomaton, resolve_backend, qa) sees it.
            os.environ[MAX_SHARD_RETRIES_ENV] = str(retries_flag)
        else:
            try:
                default_max_shard_retries()
            except ValueError as err:
                raise SystemExit(str(err)) from err
    wolfram = getattr(args, "wolfram", None)
    if wolfram is not None and not 0 <= wolfram <= 255:
        raise SystemExit(
            f"--wolfram must be an elementary rule number in 0..255, "
            f"got {wolfram}"
        )
    timeout = getattr(args, "timeout", None)
    if timeout is not None and timeout <= 0:
        raise SystemExit(f"--timeout must be positive, got {timeout:g}")
    cases = getattr(args, "cases", None)
    if cases is not None and cases < 1:
        raise SystemExit(f"--cases must be >= 1, got {cases}")
    samples = getattr(args, "samples", None)
    if samples is not None and samples < 1:
        raise SystemExit(f"--samples must be >= 1, got {samples}")
    horizon = getattr(args, "horizon", None)
    if horizon is not None and horizon < 1:
        raise SystemExit(f"--horizon must be >= 1, got {horizon}")
    density = getattr(args, "density", None)
    if density is not None and not 0.0 < density < 1.0:
        raise SystemExit(
            f"--density must be strictly between 0 and 1, got {density:g}"
        )
    flips = getattr(args, "flips", None)
    if flips is not None and flips < 0:
        raise SystemExit(f"--flips must be >= 0, got {flips}")
    max_findings = getattr(args, "max_findings", None)
    if max_findings is not None and max_findings < 1:
        raise SystemExit(f"--max-findings must be >= 1, got {max_findings}")
    backends = getattr(args, "backends", None)
    if backends is not None:
        valid = {"auto", "numpy", "table", "bitplane", "process"}
        for name in backends.split(","):
            if name.strip() and name.strip() not in valid:
                raise SystemExit(
                    f"--backends: unknown sweep backend {name.strip()!r} "
                    f"(choose from {', '.join(sorted(valid))})"
                )
    tolerance = getattr(args, "tolerance", None)
    if tolerance is not None and tolerance <= 1.0:
        raise SystemExit(f"--tolerance must be > 1.0, got {tolerance:g}")
    keep = getattr(args, "keep", None)
    if keep is not None and keep < 1:
        raise SystemExit(f"--keep must be >= 1, got {keep}")
    interval = getattr(args, "progress_interval", None)
    if interval is not None and interval <= 0:
        raise SystemExit(
            f"--progress-interval must be positive, got {interval:g}"
        )
    tail_timeout = getattr(args, "tail_timeout", None)
    if tail_timeout is not None and tail_timeout <= 0:
        raise SystemExit(f"--timeout must be positive, got {tail_timeout:g}")
    wall = getattr(args, "budget_wall", None)
    if wall is not None and wall <= 0:
        raise SystemExit(f"--budget-wall must be positive, got {wall:g}")
    states = getattr(args, "budget_states", None)
    if states is not None and states < 1:
        raise SystemExit(f"--budget-states must be >= 1, got {states}")
    mem = getattr(args, "budget_mem", None)
    if mem is not None:
        try:
            args.budget_mem = parse_size(mem)
        except ValueError as err:
            raise SystemExit(f"--budget-mem: {err}") from err


def _cmd_list(out) -> int:
    width = max(len(e.title) for e in EXPERIMENTS.values())
    for exp in EXPERIMENTS.values():
        print(f"{exp.id:>4}  {exp.title:<{width}}  [{exp.paper_ref}]", file=out)
    return 0


def _cmd_run(args: argparse.Namespace, out) -> int:
    from repro.harness import (
        Checkpoint,
        ExperimentRunner,
        RunnerConfig,
        batch_exit_code,
    )

    ids = args.ids
    if any(i.lower() == "all" for i in ids):
        ids = list(EXPERIMENTS)
    try:
        ids = [get_experiment(i).id for i in ids]
    except KeyError as err:
        print(err.args[0], file=sys.stderr)
        return 2
    checkpoint = Checkpoint(args.resume) if args.resume else None
    runner = ExperimentRunner(
        RunnerConfig(
            timeout_s=args.timeout,
            retries=args.retries,
            isolate=args.isolate,
        ),
        checkpoint=checkpoint,
        token=getattr(args, "_cancel_token", None),
    )
    reporter = getattr(args, "_progress", None)
    on_result = None
    if reporter is not None:
        on_result = lambda eid, res: reporter.update(1)  # noqa: E731
    try:
        results = runner.run_many(ids, on_result=on_result)
    finally:
        if checkpoint is not None:
            checkpoint.close()
    if args.as_json:
        json.dump(results, out, indent=2, default=str)
        print(file=out)
    else:
        for exp_id, res in results.items():
            status = res.get("status", "ok")
            if status == "timeout":
                verdict, note = "TIMEOUT", f"  (no result in {res['timeout_s']:g}s)"
            elif status == "budget":
                verdict = "BUDGET"
                note = f"  ({res.get('truncation')})"
            elif status == "error":
                err = res.get("error") or {}
                verdict = "ERROR"
                note = f"  ({err.get('type')}: {err.get('message')})"
            else:
                verdict = "HOLDS" if res.get("holds") else "FAILS"
                note = "  (resumed)" if res.get("resumed") else ""
            print(
                f"{exp_id:>4}  {verdict}  {EXPERIMENTS[exp_id].title}{note}",
                file=out,
            )
    return batch_exit_code(results)


def _cmd_simulate(args: argparse.Namespace, out) -> int:
    space = _make_space(args)
    ca = CellularAutomaton(space, _make_rule(args), memory=not args.memoryless)
    state = _make_initial(args, ca.n)
    schedule = _make_schedule(args)
    traj = sequential_trajectory(ca, state, schedule, args.steps)
    print(ca.describe(), file=out)
    print(f"schedule: {schedule.describe()}", file=out)
    print(render_spacetime(traj, ruler=True), file=out)
    return 0


def _cmd_phase_space(args: argparse.Namespace, out) -> int:
    from repro.core.budget import ambient_budget
    from repro.core.nondet import build_nondet_phase_space
    from repro.core.phase_space import build_phase_space
    from repro.harness.checkpoint import load_frontier, save_frontier
    from repro.util.validation import check_memory_budget

    space = _make_space(args)
    ca = CellularAutomaton(
        space,
        _make_rule(args),
        memory=not args.memoryless,
        backend=args.backend,
        workers=args.workers,
    )
    budget = ambient_budget()
    resume_dir = getattr(args, "resume", None)
    if ca.n > MAX_SWEEP_N:
        raise SystemExit(
            f"phase space over 2**{ca.n} configurations is too large even "
            f"for a governed build (max --n {MAX_SWEEP_N})"
        )
    if ca.n > 20 and budget.mem_bytes is None and not resume_dir:
        raise SystemExit(
            f"phase space over 2**{ca.n} configurations is too large; pass "
            f"--budget-mem SIZE for a governed (possibly partial) build, or "
            f"--resume DIR to checkpoint and resume the frontier"
        )
    try:
        check_memory_budget(ca.n, budget.mem_bytes)
    except ValueError as err:
        raise SystemExit(str(err)) from err
    frontier = None
    if resume_dir:
        frontier = load_frontier(resume_dir)
        if frontier is not None:
            print(
                f"resuming from {resume_dir} "
                f"(previously explored {frontier.get('explored', 0)} configs)",
                file=out,
            )
    print(ca.describe(), file=out)
    build = (
        build_phase_space if args.mode == "parallel" else build_nondet_phase_space
    )
    try:
        partial = build(ca, frontier=frontier)
    except ValueError as err:  # frontier/mode mismatch, oversized space
        raise SystemExit(str(err)) from err
    print(f"  {partial.describe()}", file=out)
    if not partial.complete:
        exact = partial.total is not None and partial.explored >= partial.total
        suffix = "" if exact else " (so far)"
        for key, value in (partial.stats or {}).items():
            print(f"  {key}{suffix}: {value}", file=out)
        if partial.frontier is not None and resume_dir:
            save_frontier(resume_dir, partial)
            print(
                f"  frontier saved — rerun with --resume {resume_dir} "
                f"to continue",
                file=out,
            )
        elif partial.frontier is not None:
            print(
                "  (pass --resume DIR to checkpoint the frontier for later)",
                file=out,
            )
        return 3
    if args.mode == "parallel":
        ps = partial.value
        for key, value in ps.summary().items():
            print(f"  {key}: {value}", file=out)
        dot = phase_space_dot(ps, title=ca.describe()) if args.dot else None
    else:
        nps = partial.value
        for key, value in nps.summary().items():
            print(f"  {key}: {value}", file=out)
        dot = (
            nondet_phase_space_dot(nps, title=ca.describe()) if args.dot else None
        )
    if args.dot and dot is not None:
        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(dot)
        print(f"wrote {args.dot}", file=out)
    return 0


def _census_attractor(args: argparse.Namespace, out) -> int:
    """Attractor-direct census: exact counts with no materialized space."""
    from repro.analysis.census import build_attractor_census
    from repro.harness.checkpoint import load_frontier, save_frontier
    from repro.perf.base import MAX_ATTRACTOR_N

    if args.n is not None:
        sizes = [args.n]
    else:
        sizes = list(range(args.min_n, args.max_n + 1))
    if not sizes or min(sizes) < 3:
        raise SystemExit("census needs ring sizes >= 3")
    if max(sizes) > MAX_ATTRACTOR_N:
        raise SystemExit(
            f"attractor census supports n up to {MAX_ATTRACTOR_N}, "
            f"got {max(sizes)}"
        )
    resume_dir = getattr(args, "resume", None)
    if resume_dir and len(sizes) != 1:
        raise SystemExit("census --resume needs a single size (--n N)")
    frontier = None
    if resume_dir:
        frontier = load_frontier(resume_dir)
        if frontier is not None:
            print(
                f"resuming from {resume_dir} "
                f"(previously scanned {frontier.get('next_lo', 0)} codes)",
                file=out,
            )
    print(f"{'n':>3} {'configs':>12} {'reps':>10} {'FPs':>8} "
          f"{'CCs':>5} {'2CCs':>5} {'maxLen':>6}  quotient", file=out)
    for n in sizes:
        ca = CellularAutomaton(
            Ring(n),
            MajorityRule(),
            memory=True,
            backend=args.backend,
            workers=args.workers,
        )
        partial = build_attractor_census(ca, frontier=frontier)
        frontier = None
        if not partial.complete:
            print(f"  {partial.describe()}", file=out)
            for key, value in (partial.stats or {}).items():
                print(f"  {key} (so far): {value}", file=out)
            if partial.frontier is not None and resume_dir:
                save_frontier(resume_dir, partial)
                print(
                    f"  frontier saved — rerun with --resume {resume_dir} "
                    f"to continue",
                    file=out,
                )
            elif partial.frontier is not None:
                print(
                    "  (pass --resume DIR to checkpoint the frontier "
                    "for later)",
                    file=out,
                )
            return 3
        r = partial.value
        print(
            f"{r.n:>3} {r.configurations:>12} {r.orbit_reps:>10} "
            f"{r.fixed_points:>8} {r.cycle_configs:>5} "
            f"{r.two_cycle_configs:>5} {r.max_cycle_len:>6}  {r.quotient}",
            file=out,
        )
    return 0


def _cmd_census(args: argparse.Namespace, out) -> int:
    from repro.analysis.census import find_linear_recurrence, majority_ring_census

    mode = args.mode
    if mode == "auto":
        mode = "attractor" if args.n is not None else "full"
    if mode == "attractor":
        return _census_attractor(args, out)
    if args.n is not None:
        args.min_n = args.max_n = args.n
    if not 3 <= args.min_n <= args.max_n <= 18:
        raise SystemExit(
            "census --mode full needs 3 <= min-n <= max-n <= 18 "
            "(attractor-direct mode reaches larger rings)"
        )
    rows = majority_ring_census(
        range(args.min_n, args.max_n + 1),
        backend=args.backend,
        workers=args.workers,
    )
    print(f"{'n':>3} {'configs':>8} {'FPs':>6} {'CCs':>4} {'GoE':>7} "
          f"{'GoE%':>6} {'maxT':>5}", file=out)
    for r in rows:
        print(
            f"{r.n:>3} {r.configurations:>8} {r.fixed_points:>6} "
            f"{r.cycle_configs:>4} {r.gardens_of_eden:>7} "
            f"{r.garden_fraction:>6.1%} {r.max_transient:>5}",
            file=out,
        )
    rec = find_linear_recurrence([r.fixed_points for r in rows])
    if rec is not None:
        terms = " + ".join(
            f"{c}*a(n-{k + 1})" for k, c in enumerate(rec[1]) if c != 0
        )
        print(f"fixed-point recurrence: a(n) = {terms}", file=out)
    return 0


def _cmd_mc(args: argparse.Namespace, out) -> int:
    """Streaming Monte-Carlo estimation over a seeded sample stream."""
    from repro.contracts.dialects import McContract
    from repro.harness.checkpoint import load_frontier, save_frontier
    from repro.mc import McKernel, build_mc_estimate, write_mc_artifact

    if args.n < 2 * args.radius + 1:
        raise SystemExit(
            f"--n must be >= 2*radius + 1 = {2 * args.radius + 1}, "
            f"got {args.n}"
        )
    rule = _make_rule(args)
    kernel_kwargs = dict(
        schedule=args.schedule,
        family=args.family,
        seed=args.seed,
        horizon=args.horizon,
        density=args.density,
        flips=args.flips,
    )
    backend = None
    if args.backend == "process":
        # Explicit process sharding splits the sample stream over the
        # supervised worker pool.  Every other backend choice runs the
        # kernel's serial loop — it is already 64-way SWAR-parallel, so
        # no automaton (or backend) is constructed at all.
        ca = CellularAutomaton(
            Ring(args.n, radius=args.radius),
            rule,
            memory=not args.memoryless,
            backend="process",
            workers=args.workers,
        )
        kernel = McKernel.from_automaton(ca, **kernel_kwargs)
        backend = ca.backend
    else:
        kernel = McKernel(
            rule,
            args.n,
            radius=args.radius,
            memory=not args.memoryless,
            **kernel_kwargs,
        )
    resume_dir = getattr(args, "resume", None)
    frontier = None
    if resume_dir:
        frontier = load_frontier(resume_dir)
        if frontier is not None:
            print(
                f"resuming from {resume_dir} "
                f"(previously sampled {frontier.get('next_lo', 0)} configs)",
                file=out,
            )
    print(kernel.describe(), file=out)
    try:
        partial = build_mc_estimate(
            kernel, args.samples, frontier=frontier, backend=backend
        )
    except ValueError as err:  # frontier/run mismatch
        raise SystemExit(str(err)) from err
    if not partial.complete:
        print(f"  {partial.describe()}", file=out)
        for key, value in (partial.stats or {}).items():
            print(f"  {key}: {value}", file=out)
        if partial.frontier is not None and resume_dir:
            save_frontier(resume_dir, partial)
            print(
                f"  frontier saved — rerun with --resume {resume_dir} "
                f"to continue",
                file=out,
            )
        elif partial.frontier is not None:
            print(
                "  (pass --resume DIR to checkpoint the frontier for later)",
                file=out,
            )
        return 3
    payload = partial.value
    est = payload["estimates"]
    print(
        f"  samples: {payload['samples']} (lanes={payload['lanes']}, "
        f"family={payload['family']}, seed={payload['seed']}, "
        f"horizon={payload['horizon']})",
        file=out,
    )
    for label, key in (
        ("fixed-point", "fixed_point"),
        ("2-cycle", "two_cycle"),
        ("undecided", "undecided"),
    ):
        e = est[key]
        lo99, hi99 = e["ci99"]
        print(
            f"  {label:<12} rate {e['rate']:.6f}  "
            f"ci99 [{lo99:.6f}, {hi99:.6f}]  ({e['count']} samples)",
            file=out,
        )
    conv = est["convergence_time"]
    if conv["count"]:
        clo, chi = conv["ci95"]
        print(
            f"  convergence time: mean {conv['mean']:.3f} steps  "
            f"ci95 [{clo:.3f}, {chi:.3f}]  max {conv['max']}",
            file=out,
        )
    energy = est.get("energy_descent")
    if energy is not None and energy["count"]:
        elo, ehi = energy["ci95"]
        print(
            f"  energy descent: mean {energy['mean']:.3f}  "
            f"ci95 [{elo:.3f}, {ehi:.3f}]",
            file=out,
        )
    if args.artifact:
        write_mc_artifact(args.artifact, payload)
        check = McContract().validate(args.artifact)
        if check.status != "valid":
            print(
                f"artifact {args.artifact} failed its contract: "
                f"{check.detail}",
                file=sys.stderr,
            )
            return 2
        print(f"wrote {args.artifact} (repro-mc/1, contract-valid)", file=out)
    return 0


def _cmd_survey(args: argparse.Namespace, out) -> int:
    from repro.analysis.elementary import survey_all_rules, survey_summary

    sizes = tuple(range(5, max(6, args.max_ring + 1)))
    profiles = survey_all_rules(ring_sizes=sizes, backend=args.backend)
    if args.full_table:
        print(f"{'rule':>5} {'mono':>5} {'sym':>4} {'thr':>4} "
              f"{'par-cycles':>10} {'seq-cycles':>10}", file=out)
        for p in profiles:
            print(
                f"{p.number:>5} {str(p.monotone):>5} {str(p.symmetric):>4} "
                f"{str(p.linear_threshold):>4} "
                f"{str(p.parallel_cycles_somewhere):>10} "
                f"{str(p.sequential_cycles_somewhere):>10}",
                file=out,
            )
    for key, value in survey_summary(profiles).items():
        print(f"  {key}: {value}", file=out)
    return 0


def _cmd_stats(args: argparse.Namespace, out) -> int:
    """Pretty-print a metrics snapshot (live registry or a run directory)."""
    source = "in-process registry"
    labels: dict[str, object] = {}
    if args.artifacts_dir:
        try:
            manifest = obs.load_manifest(args.artifacts_dir)
        except (OSError, json.JSONDecodeError) as err:
            raise SystemExit(
                f"cannot read run directory {args.artifacts_dir!r}: {err}"
            ) from err
        snapshot = manifest.get("metrics") or {}
        labels = {
            "run_id": manifest.get("run_id"),
            "command": manifest.get("command") or "run",
        }
        source = (
            f"run {manifest.get('run_id')} "
            f"(command: {manifest.get('command')}, "
            f"started: {manifest.get('started')})"
        )
        if not manifest.get("finalized", True):
            source += " [NOT FINALIZED — run crashed or is still going]"
    else:
        snapshot = obs.REGISTRY.snapshot()
    fmt = getattr(args, "stats_format", None) or "text"
    if args.as_json:
        fmt = "json"
    if fmt == "json":
        json.dump(snapshot, out, indent=2, default=str)
        print(file=out)
        return 0
    if fmt == "prom":
        out.write(obs.render_prometheus(snapshot, labels=labels or None))
        return 0
    print(f"metrics snapshot — {source}", file=out)
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    timers = snapshot.get("timers") or {}
    if not (counters or gauges or timers):
        print("  (empty — run something with --trace first)", file=out)
        return 0
    if counters:
        print("counters:", file=out)
        for name, value in counters.items():
            print(f"  {name:<40} {value}", file=out)
    if gauges:
        print("gauges:", file=out)
        for name, value in gauges.items():
            print(f"  {name:<40} {value:g}", file=out)
    if timers:
        print("timers:", file=out)
        print(f"  {'name':<40} {'count':>6} {'total':>12} "
              f"{'mean':>12} {'last':>12} {'p50':>12}", file=out)
        for name, stats in timers.items():
            p50 = stats.get("p50_s")
            p50_txt = f"{p50 * 1e3:>10.3f}ms" if p50 is not None else f"{'-':>12}"
            print(
                f"  {name:<40} {stats['count']:>6} "
                f"{stats['total_s'] * 1e3:>10.3f}ms "
                f"{stats['mean_s'] * 1e3:>10.3f}ms "
                f"{stats['last_s'] * 1e3:>10.3f}ms "
                f"{p50_txt}",
                file=out,
            )
    return 0


def _cmd_fuzz(args: argparse.Namespace, out) -> int:
    from repro import qa
    from repro.qa.fuzz import SELF_TEST_MAX_N

    backends = None
    if args.backends and args.backends != "auto":
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    elif (os.cpu_count() or 1) >= 2:
        # 'auto' with real parallelism available: also diff the sharded
        # fork + shared-memory merge path against the serial kernels.
        from repro.qa.differential import AUTO_BACKENDS

        backends = [*AUTO_BACKENDS, "process"]
    findings_dir = args.findings_dir
    if findings_dir is None and getattr(args, "artifacts_dir", None):
        findings_dir = os.path.join(args.artifacts_dir, "findings")

    if args.replay:
        try:
            violation = qa.replay_finding(args.replay, backends=backends)
        except (OSError, ValueError, KeyError) as err:
            raise SystemExit(f"cannot replay {args.replay!r}: {err}") from err
        if violation is None:
            print(f"{args.replay}: check passes — finding no longer "
                  f"reproduces", file=out)
            return 0
        print(f"{args.replay}: still failing", file=out)
        print(json.dumps(violation, indent=2, sort_keys=True, default=str),
              file=out)
        return 1

    if args.self_test:
        results = qa.run_self_test(
            seed=args.seed, cases=args.cases, backends=backends,
            findings_dir=findings_dir,
        )
        all_ok = True
        for name, res in results.items():
            if res["caught"] and res["shrunk_n"] <= SELF_TEST_MAX_N:
                print(f"  {name}: caught by {res['check']} after "
                      f"{res['cases_run']} case(s), shrunk to "
                      f"n={res['shrunk_n']}", file=out)
            elif res["caught"]:
                all_ok = False
                print(f"  {name}: caught by {res['check']} but only "
                      f"shrunk to n={res['shrunk_n']} "
                      f"(want <= {SELF_TEST_MAX_N})", file=out)
            else:
                all_ok = False
                print(f"  {name}: MISSED after {res['cases_run']} case(s)",
                      file=out)
        print(f"self-test: {len(results)} mutant kernels, "
              f"{'all caught' if all_ok else 'ORACLE BLIND SPOT'}", file=out)
        return 0 if all_ok else 1

    report = qa.run_fuzz(
        seed=args.seed, cases=args.cases, backends=backends,
        shrink=args.shrink, max_findings=args.max_findings,
        findings_dir=findings_dir,
    )
    names = ",".join(report.backends_seen) or "none"
    print(f"fuzz seed={report.seed}: {report.cases_run}/"
          f"{report.cases_requested} cases, backends [{names}], "
          f"{len(report.findings)} finding(s)", file=out)
    for finding in report.findings:
        spec = qa.InstanceSpec.from_dict(finding.spec)
        where = ""
        if findings_dir is not None:
            where = f" -> {os.path.join(findings_dir, finding.name + '.json')}"
        print(f"  {finding.check}: {spec.describe()} "
              f"[digest {finding.digest}]{where}", file=out)
    if report.findings:
        return 1
    if report.truncated is not None:
        print(f"budget exhausted — {report.truncated}", file=sys.stderr)
        return 3
    return 0


def _runs_db_path(args: argparse.Namespace) -> str:
    return (
        getattr(args, "db", None)
        or os.environ.get("REPRO_RUNS_DB", "").strip()
        or "runs_index.sqlite"
    )


def _cmd_doctor(args: argparse.Namespace, out) -> int:
    from repro.contracts import run_doctor

    run_dir = args.run_dir
    if not os.path.isdir(run_dir):
        raise SystemExit(f"no such run directory: {run_dir!r}")
    report = run_doctor(run_dir, repair=not args.no_repair)
    if args.doctor_json:
        json.dump(report, out, indent=2)
        print(file=out)
        return report["exit_code"]
    summary = report["summary"]
    print(
        f"doctor {run_dir}: {summary['valid']} valid, "
        f"{summary['truncated-recoverable']} truncated-recoverable, "
        f"{summary['corrupt']} corrupt",
        file=out,
    )
    for check in report["files"]:
        if check["status"] == "valid" and "repair" not in check:
            continue
        print(f"  [{check['status']}] {check['path']}: {check['detail']}",
              file=out)
    for repair_rec in report["repairs"]:
        print(f"  repaired ({repair_rec['action']}) {repair_rec['path']}: "
              f"{repair_rec['detail']}", file=out)
    for check in report["unresolved"]:
        print(f"  UNRESOLVED {check['path']}: {check['detail']}",
              file=out)
    verdict = {0: "consistent", 1: "repaired" if not args.no_repair
               else "repairable", 2: "corrupt"}[report["exit_code"]]
    print(f"verdict: {verdict} (report: "
          f"{os.path.join(run_dir, 'doctor_report.json')})", file=out)
    return report["exit_code"]


def _cmd_runs(args: argparse.Namespace, out) -> int:
    from repro.obs.index import compare_medians, open_with_recovery

    db = _runs_db_path(args)
    action = args.runs_command
    if action != "index" and not os.path.exists(db):
        raise SystemExit(
            f"no run index at {db!r} — build one with 'repro runs index DIR'"
        )
    # A corrupt or schema-foreign database is moved aside and rebuilt
    # (re-ingesting the paths an `index` invocation names) rather than
    # surfacing a raw sqlite3.DatabaseError traceback.
    rebuild_from = list(args.paths) if action == "index" else []
    try:
        idx, recovery = open_with_recovery(db, rebuild_from=rebuild_from)
    except (OSError, RuntimeError) as err:
        raise SystemExit(f"cannot open run index {db!r}: {err}") from err
    if recovery is not None:
        print(
            f"warning: {db}: {recovery['problem']}; moved the damaged "
            f"database to {recovery['moved_to'][0]} and rebuilt "
            f"({len(recovery['reindexed'])} run(s) re-ingested)",
            file=sys.stderr,
        )
    with idx:
        if action == "index":
            ingested: list[str] = []
            for path in args.paths:
                try:
                    ingested.extend(idx.index_run(path))
                except (FileNotFoundError, ValueError) as err:
                    raise SystemExit(f"runs index: {err}") from err
            print(f"indexed {len(ingested)} run(s) into {db}", file=out)
            for rid in ingested:
                print(f"  {rid}", file=out)
            return 0
        if action == "list":
            rows = idx.list_runs(kind=args.kind)
            if not rows:
                print("(no indexed runs)", file=out)
                return 0
            print(f"{'run_id':<36} {'kind':<9} {'status':<12} "
                  f"{'started':<24} {'dur':>9}  command", file=out)
            for r in rows:
                dur = (
                    f"{r['duration_s']:.2f}s"
                    if r["duration_s"] is not None
                    else "-"
                )
                print(
                    f"{r['run_id']:<36} {r['kind']:<9} "
                    f"{(r['status'] or '-'):<12} "
                    f"{(r['started'] or '-'):<24} {dur:>9}  "
                    f"{r['command'] or '-'}",
                    file=out,
                )
            return 0
        if action == "show":
            try:
                run = idx.resolve_run(args.run)
            except KeyError as err:
                raise SystemExit(str(err.args[0])) from err
            rid = run["run_id"]
            for key in ("run_id", "kind", "command", "status", "path",
                        "started", "finished", "duration_s", "exit_code",
                        "schema"):
                if run.get(key) is not None:
                    print(f"  {key:<12} {run[key]}", file=out)
            if run.get("extra"):
                print(f"  {'extra':<12} {run['extra']}", file=out)
            counts = idx.counts(rid)
            print(f"  {'rows':<12} metrics={counts['metrics']} "
                  f"spans={counts['spans']} findings={counts['findings']}",
                  file=out)
            medians = idx.timer_medians(rid)
            if medians:
                print("  top timers (median):", file=out)
                ranked = sorted(
                    medians.items(), key=lambda kv: kv[1], reverse=True
                )
                for name, median in ranked[:10]:
                    print(f"    {name:<46} {median * 1e3:>10.3f}ms", file=out)
            for finding in idx.run_findings(rid):
                print(f"  finding {finding['check_name']} "
                      f"[digest {finding['digest']}]", file=out)
            return 0
        if action == "gc":
            dropped = idx.gc(keep=args.keep)
            print(f"dropped {dropped} run(s) from {db}", file=out)
            return 0
        if action == "compare":
            try:
                base_run = idx.resolve_run(args.baseline)
                cur_run = idx.resolve_run(args.current)
            except KeyError as err:
                raise SystemExit(str(err.args[0])) from err
            baseline = idx.timer_medians(base_run["run_id"])
            current = idx.timer_medians(cur_run["run_id"])
            if not baseline:
                print(f"no timers indexed for baseline "
                      f"{base_run['run_id']}", file=sys.stderr)
                return 2
            if not current:
                print(f"no timers indexed for current "
                      f"{cur_run['run_id']}", file=sys.stderr)
                return 2
            lines, failed = compare_medians(
                baseline, current, args.tolerance
            )
            print(
                f"run comparison ({base_run['run_id']} -> "
                f"{cur_run['run_id']}, tolerance {args.tolerance:g}x):",
                file=out,
            )
            print("\n".join(lines), file=out)
            if failed:
                print("FAIL: at least one timer regressed beyond tolerance",
                      file=sys.stderr)
                return 1
            print("OK: no timer regressed beyond tolerance", file=out)
            return 0
    raise AssertionError(
        f"unhandled runs action {action!r}"
    )  # pragma: no cover


def _cmd_tail(args: argparse.Namespace, out) -> int:
    from repro.obs.progress import format_heartbeat, iter_progress

    run_dir = args.run_dir
    if not os.path.isdir(run_dir):
        raise SystemExit(f"no such run directory: {run_dir!r}")
    count = 0
    for ev in iter_progress(
        run_dir, follow=args.follow, timeout=args.tail_timeout
    ):
        print(format_heartbeat(ev), file=out)
        count += 1
    if count == 0:
        print("(no progress heartbeats recorded — was the run started "
              "with --progress?)", file=out)
        try:
            manifest = obs.load_manifest(run_dir)
        except (OSError, json.JSONDecodeError):
            return 0
        status = manifest.get("status") or (
            "complete" if manifest.get("finalized") else "in-progress"
        )
        print(f"manifest: command={manifest.get('command')} status={status}",
              file=out)
    return 0


def _dispatch(args: argparse.Namespace, out) -> int:
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "simulate":
        return _cmd_simulate(args, out)
    if args.command == "phase-space":
        return _cmd_phase_space(args, out)
    if args.command == "census":
        return _cmd_census(args, out)
    if args.command == "mc":
        return _cmd_mc(args, out)
    if args.command == "survey":
        return _cmd_survey(args, out)
    if args.command == "stats":
        return _cmd_stats(args, out)
    if args.command == "fuzz":
        return _cmd_fuzz(args, out)
    if args.command == "runs":
        return _cmd_runs(args, out)
    if args.command == "doctor":
        return _cmd_doctor(args, out)
    if args.command == "tail":
        return _cmd_tail(args, out)
    if args.command == "report":
        from repro.experiments.report import generate_report

        text = generate_report()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {args.output}", file=out)
        else:
            print(text, file=out)
        if "**ERROR**" in text or "**TIMEOUT**" in text or "**BUDGET**" in text:
            return 2
        return 0 if "**FAILS**" not in text else 1
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _budget_from_args(args: argparse.Namespace, token: CancelToken) -> Budget:
    """The session budget: CLI flags (already validated/parsed) + the token.

    With no flags this is an unlimited budget that still carries the
    cancellation token, so SIGTERM reaches every governed loop.
    """
    return Budget(
        wall_s=getattr(args, "budget_wall", None),
        mem_bytes=getattr(args, "budget_mem", None),
        max_states=getattr(args, "budget_states", None),
        token=token,
    )


def _install_sigterm(token: CancelToken) -> None:
    """First SIGTERM cancels cooperatively; a second one kills for real."""

    def _on_sigterm(signum, frame):  # pragma: no cover - signal delivery
        if token.cancelled:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            os.kill(os.getpid(), signal.SIGTERM)
        token.cancel("SIGTERM")

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (embedded use) — skip the handler


def _space_nodes(args: argparse.Namespace) -> int:
    """Node count implied by the space flags (for progress totals)."""
    space = getattr(args, "space", "ring")
    if space == "grid":
        return args.rows * args.cols
    if space == "hypercube":
        return 1 << args.dimension
    return args.n


def _progress_total(args: argparse.Namespace) -> int | None:
    """Expected charged-states total for this invocation, or None.

    Mirrors each enumerator's charging scheme so the reporter's ETA
    means something: phase-space charges one state per explored config
    (x n successor slots in sequential mode), census sums the ring
    spaces, fuzz charges one state per case, run advances per
    experiment via ``on_result``.
    """
    if args.command == "phase-space":
        nodes = _space_nodes(args)
        states = 1 << nodes
        if getattr(args, "mode", "parallel") == "sequential":
            return states * nodes
        return states
    if args.command == "census":
        if getattr(args, "n", None) is not None:
            return 1 << args.n
        return sum(1 << k for k in range(args.min_n, args.max_n + 1))
    if args.command == "mc":
        from repro.mc import lanes_for, round_samples

        return round_samples(args.samples, lanes_for(args.n))
    if args.command == "fuzz":
        if getattr(args, "replay", None) or getattr(args, "self_test", False):
            return None
        return args.cases
    if args.command == "run":
        ids = getattr(args, "ids", [])
        if any(i.lower() == "all" for i in ids):
            return len(EXPERIMENTS)
        return len(dict.fromkeys(i.upper() for i in ids))
    return None


def _progress_label(args: argparse.Namespace) -> str:
    if args.command == "phase-space":
        return f"phase-space n={_space_nodes(args)}"
    if args.command == "census":
        if getattr(args, "n", None) is not None:
            return f"census n={args.n}"
        return f"census n={args.min_n}..{args.max_n}"
    if args.command == "mc":
        return f"mc n={args.n}"
    if args.command == "fuzz":
        return f"fuzz seed={args.seed}"
    if args.command == "run":
        return "run"
    return args.command


def _partial_location(args: argparse.Namespace) -> str:
    where = getattr(args, "artifacts_dir", None) or getattr(args, "resume", None)
    if where:
        return f" — partial artifacts in {where}"
    return ""


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 1 some experiment fails, 2 error/timeout/usage,
    3 budget-truncated partial result, 130 Ctrl-C, 143 SIGTERM.
    """
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    _validate_args(args)
    obs.enable_from_env()
    faults.install_from_env()

    # ``stats`` *reads* observability state; it never starts a run of its
    # own, so it bypasses the artifact/tracing setup below (keeping only
    # the --profile contract, which holds for every subcommand).
    if args.command == "stats":
        profile_path = getattr(args, "profile", None)
        if not profile_path:
            return _cmd_stats(args, out)
        profiler = obs.Profiler()
        profiler.install()
        enabled_here = not obs.is_enabled()
        if enabled_here:
            obs.enable()
        try:
            with obs.span("cli.stats"):
                return _cmd_stats(args, out)
        finally:
            profiler.uninstall()
            if enabled_here:
                obs.disable()
            obs.write_profile(
                profile_path,
                profiler.profile(),
                fmt=getattr(args, "profile_format", "speedscope"),
                name="repro stats",
            )

    token = CancelToken()
    args._cancel_token = token
    _install_sigterm(token)

    want_trace = bool(getattr(args, "trace", False))
    artifacts_dir = getattr(args, "artifacts_dir", None)
    artifacts = None
    if artifacts_dir:
        raw_argv = list(argv) if argv is not None else sys.argv[1:]
        try:
            artifacts = obs.RunArtifacts(
                artifacts_dir, command=args.command, argv=raw_argv
            )
        except OSError as err:
            raise SystemExit(
                f"cannot create artifacts directory {artifacts_dir!r}: {err}"
            ) from err
        artifacts.activate()
        want_trace = True
    profile_path = getattr(args, "profile", None)
    profiler = None
    if profile_path:
        want_trace = True
        profiler = obs.Profiler()
        profiler.install()
    progress = None
    if getattr(args, "progress", False):
        progress = obs.ProgressReporter(
            _progress_label(args),
            total=_progress_total(args),
            interval=getattr(args, "progress_interval", 1.0),
            path=(
                os.path.join(artifacts_dir, PROGRESS_NAME)
                if artifacts_dir
                else None
            ),
        )
        args._progress = progress
    enabled_here = want_trace and not obs.is_enabled()
    if enabled_here:
        obs.enable(trace_memory=bool(getattr(args, "trace_memory", False)))
    code = 1
    try:
        try:
            budget = _budget_from_args(args, token)
            if progress is not None and args.command != "run":
                # ``run`` advances per experiment via on_result; hooking
                # its budget too would double-count experiment-internal
                # charges against the experiment total.
                budget.on_charge = progress.on_charge
            with use_budget(budget):
                if profiler is not None:
                    with obs.span(f"cli.{args.command}"):
                        code = _dispatch(args, out)
                else:
                    code = _dispatch(args, out)
        except BackendUnsupported as exc:
            # An explicit --backend that cannot run the automaton: a
            # one-line error, not a traceback (auto never raises this).
            raise SystemExit(str(exc)) from exc
        except ShardFailed as exc:
            # The process backend's typed terminal error: the shard failed
            # every worker attempt *and* the serial fallback.  The original
            # worker traceback beats the parent's re-raise stack.
            tb = exc.traceback_text
            if tb:
                print(tb.rstrip(), file=sys.stderr)
            print(f"sweep failed: {exc}", file=sys.stderr)
            code = 1
        except KeyboardInterrupt:
            # Satellite of the governance work: no traceback, one line,
            # the conventional 128+SIGINT exit code.  Artifacts/metrics
            # are still flushed by the ``finally`` below.
            token.cancel("KeyboardInterrupt")
            print(f"interrupted{_partial_location(args)}", file=sys.stderr)
            code = 130
        except BudgetExceeded as exc:
            if token.reason == "SIGTERM":
                print(f"terminated{_partial_location(args)}", file=sys.stderr)
                code = 143
            else:
                print(f"budget exhausted — {exc.reason}", file=sys.stderr)
                if exc.partial is not None:
                    print(exc.partial.describe(), file=sys.stderr)
                code = 3
        else:
            if token.reason == "SIGTERM":
                print(f"terminated{_partial_location(args)}", file=sys.stderr)
                code = 143
        return code
    finally:
        if progress is not None:
            progress.finish()
        if profiler is not None:
            profiler.uninstall()
            try:
                obs.write_profile(
                    profile_path,
                    profiler.profile(),
                    fmt=getattr(args, "profile_format", "speedscope"),
                    name=f"repro {args.command}",
                )
            except OSError as err:
                print(f"cannot write profile {profile_path!r}: {err}",
                      file=sys.stderr)
        if enabled_here:
            obs.disable()
        if artifacts is not None:
            artifacts.finalize(exit_code=code)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
