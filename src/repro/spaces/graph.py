"""Arbitrary finite graphs as cellular spaces.

Section 4 of the paper proposes studying "CA-like finite automata defined
over arbitrary rather than only regular (finite) graphs" — exactly the
setting of the sequential/synchronous dynamical systems literature it cites.
``GraphSpace`` adapts any undirected ``networkx`` graph; the SDS machinery
in :mod:`repro.sds` builds on it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import networkx as nx

from repro.spaces.base import FiniteSpace
from repro.util.validation import check_node_index, check_positive

__all__ = ["GraphSpace", "complete_space", "star_space", "path_space"]


class GraphSpace(FiniteSpace):
    """Cellular space over an arbitrary undirected graph.

    Nodes are relabelled to ``0 .. n-1`` in sorted order of their original
    labels (sortable labels required); :attr:`labels` maps indices back.
    Self-loops are dropped — a node's own state participates only through
    the with-memory convention, never as a graph edge.
    """

    def __init__(self, graph: nx.Graph):
        if graph.is_directed():
            raise ValueError("GraphSpace requires an undirected graph")
        if graph.number_of_nodes() == 0:
            raise ValueError("GraphSpace requires at least one node")
        self.labels: list[Hashable] = sorted(graph.nodes)
        index = {label: i for i, label in enumerate(self.labels)}
        self._adj: list[tuple[int, ...]] = [()] * len(self.labels)
        for label, i in index.items():
            nbrs = sorted(
                index[m] for m in graph.neighbors(label) if m != label
            )
            self._adj[i] = tuple(nbrs)

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Hashable, Hashable]]) -> "GraphSpace":
        """Build a space from an edge list."""
        g = nx.Graph()
        g.add_edges_from(edges)
        return cls(g)

    @property
    def n(self) -> int:
        return len(self._adj)

    def neighbors(self, i: int) -> tuple[int, ...]:
        check_node_index(i, self.n)
        return self._adj[i]

    def describe(self) -> str:
        m = sum(len(a) for a in self._adj) // 2
        return f"GraphSpace(n={self.n}, edges={m})"


def complete_space(n: int) -> GraphSpace:
    """The complete graph ``K_n`` — every node sees every other node.

    MAJORITY on ``K_n`` is global majority voting; a useful extreme case for
    the convergence experiments.
    """
    check_positive(n, "n")
    return GraphSpace(nx.complete_graph(n))


def star_space(leaves: int) -> GraphSpace:
    """The star ``K_{1,leaves}`` — bipartite and maximally irregular."""
    check_positive(leaves, "leaves")
    return GraphSpace(nx.star_graph(leaves))


def path_space(n: int) -> GraphSpace:
    """The path graph on ``n`` nodes (radius-1 line, graph form)."""
    check_positive(n, "n")
    return GraphSpace(nx.path_graph(n))
