"""Two-dimensional grid spaces.

Section 3 of the paper notes that its two-cycle constructions extend to 2-D
rectangular grids (any bipartite cellular space).  ``Grid2D`` supports both
the von Neumann (4-neighbor) and Moore (8-neighbor) neighborhoods, with
toroidal or fixed (quiescent) boundaries.  Note the Moore torus is *not*
bipartite, which the bipartite-two-cycle experiments use as a negative
control.
"""

from __future__ import annotations

from repro.spaces.base import FiniteSpace
from repro.util.validation import check_node_index, check_positive

__all__ = ["Grid2D"]

_VON_NEUMANN = ((-1, 0), (0, -1), (0, 1), (1, 0))
_MOORE = tuple(
    (dr, dc) for dr in (-1, 0, 1) for dc in (-1, 0, 1) if (dr, dc) != (0, 0)
)


class Grid2D(FiniteSpace):
    """A ``rows x cols`` grid; node ``(r, c)`` has index ``r * cols + c``."""

    def __init__(
        self,
        rows: int,
        cols: int,
        neighborhood: str = "von_neumann",
        torus: bool = True,
    ):
        check_positive(rows, "rows")
        check_positive(cols, "cols")
        if neighborhood not in ("von_neumann", "moore"):
            raise ValueError(
                f"neighborhood must be 'von_neumann' or 'moore', got {neighborhood!r}"
            )
        if torus and (rows < 3 or cols < 3):
            # A 2-wide torus would duplicate neighbors (i-1 == i+1 mod 2).
            raise ValueError("toroidal grids need rows >= 3 and cols >= 3")
        self.rows = rows
        self.cols = cols
        self.neighborhood = neighborhood
        self.torus = torus
        self._offsets = _VON_NEUMANN if neighborhood == "von_neumann" else _MOORE

    @property
    def n(self) -> int:
        return self.rows * self.cols

    def index(self, row: int, col: int) -> int:
        """Node index of cell ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"cell ({row}, {col}) outside {self.rows}x{self.cols}")
        return row * self.cols + col

    def cell(self, i: int) -> tuple[int, int]:
        """Cell coordinates of node ``i``."""
        check_node_index(i, self.n)
        return divmod(i, self.cols)

    def neighbors(self, i: int) -> tuple[int, ...]:
        row, col = self.cell(i)
        out = []
        for dr, dc in self._offsets:
            rr, cc = row + dr, col + dc
            if self.torus:
                out.append(self.index(rr % self.rows, cc % self.cols))
            elif 0 <= rr < self.rows and 0 <= cc < self.cols:
                out.append(self.index(rr, cc))
            else:
                out.append(self._QUIESCENT)
        return tuple(out)

    def describe(self) -> str:
        kind = "torus" if self.torus else "bounded"
        return (
            f"Grid2D({self.rows}x{self.cols}, {self.neighborhood}, {kind})"
        )
