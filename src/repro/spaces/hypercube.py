"""Hypercube cellular spaces.

The paper remarks that "Hypercube CA with MAJORITY ... have two-cycles in
their respective phase spaces" — the d-cube is bipartite (even/odd parity of
the node label), so the bipartite two-cycle construction applies.
"""

from __future__ import annotations

from repro.spaces.base import FiniteSpace
from repro.util.validation import check_node_index, check_positive

__all__ = ["Hypercube"]


class Hypercube(FiniteSpace):
    """The ``d``-dimensional Boolean hypercube: ``2**d`` nodes.

    Node ``i`` is adjacent to every node obtained by flipping one bit of
    ``i``; neighbors are listed in order of the flipped bit.
    """

    def __init__(self, dimension: int):
        check_positive(dimension, "dimension")
        if dimension > 16:
            raise ValueError(
                f"hypercube of dimension {dimension} has 2**{dimension} nodes; "
                "refusing to build"
            )
        self.dimension = dimension

    @property
    def n(self) -> int:
        return 1 << self.dimension

    def neighbors(self, i: int) -> tuple[int, ...]:
        check_node_index(i, self.n)
        return tuple(i ^ (1 << b) for b in range(self.dimension))

    def parity_classes(self) -> tuple[frozenset[int], frozenset[int]]:
        """The canonical bipartition: even-weight vs. odd-weight labels."""
        even = frozenset(i for i in range(self.n) if int(i).bit_count() % 2 == 0)
        odd = frozenset(range(self.n)) - even
        return even, odd

    def describe(self) -> str:
        return f"Hypercube(d={self.dimension}, n={self.n})"
