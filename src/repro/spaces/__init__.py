"""Cellular spaces: the "hardware" of a cellular automaton (Definition 1).

A cellular space is a regular graph plus a finite state set with a quiescent
state.  This package provides the finite spaces used in the paper (lines,
rings), the higher-dimensional spaces of its Section 3 remarks (2-D grids,
hypercubes, general bipartite graphs, Cayley graphs), the arbitrary finite
graphs of its Section 4 outlook, and an exact finite-support simulation of
the paper's default space, the two-way infinite line.
"""

from repro.spaces.base import CellularSpace, FiniteSpace
from repro.spaces.cayley import CayleySpace, cayley_product
from repro.spaces.graph import GraphSpace, complete_space, star_space
from repro.spaces.grid import Grid2D
from repro.spaces.hypercube import Hypercube
from repro.spaces.infinite import (
    InfiniteLine,
    SupportConfig,
    infinite_orbit,
    infinite_step,
)
from repro.spaces.line import Line, Ring

__all__ = [
    "CellularSpace",
    "FiniteSpace",
    "Line",
    "Ring",
    "Grid2D",
    "Hypercube",
    "GraphSpace",
    "complete_space",
    "star_space",
    "CayleySpace",
    "cayley_product",
    "InfiniteLine",
    "SupportConfig",
    "infinite_step",
    "infinite_orbit",
]
