"""Exact simulation of CA on the two-way infinite line.

The paper's default cellular space is the two-way infinite line, and its
Lemma 1(i) witness — the alternating configuration ``...010101...`` — has
infinite support.  We therefore represent infinite configurations exactly as
*two-way eventually periodic* words:

* a left background word ``L`` (value at position ``p < lo`` is
  ``L[p mod len(L)]``, phase anchored to absolute positions),
* a finite core over ``[lo, hi)``, and
* a right background word ``R`` (value at ``p >= hi`` is ``R[p mod len(R)]``).

This class of configurations is closed under one synchronous step of any
finite-radius rule: far inside a periodic background the rule's window is
periodic, so the image is periodic with the same period, and the core only
grows by the radius on each side.  Canonicalisation (minimal periods,
maximal trimming) makes equality and hashing exact, which is what lets us
detect genuine temporal cycles *on the infinite line* — no truncation to a
finite ring is involved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.rules import UpdateRule

__all__ = ["InfiniteLine", "SupportConfig", "infinite_step", "infinite_orbit",
           "infinite_update_node"]


def _minimal_period(word: tuple[int, ...]) -> tuple[int, ...]:
    """Shortest divisor-period representation of a word under absolute phase."""
    p = len(word)
    for d in range(1, p + 1):
        if p % d:
            continue
        if all(word[j] == word[j % d] for j in range(p)):
            return word[:d]
    return word  # pragma: no cover - d == p always matches


def _parse_word(word: str | tuple[int, ...] | list[int]) -> tuple[int, ...]:
    if isinstance(word, str):
        bits = tuple(int(c) for c in word)
    else:
        bits = tuple(int(b) for b in word)
    if not bits:
        raise ValueError("background word must be non-empty")
    if any(b not in (0, 1) for b in bits):
        raise ValueError(f"background word must be binary, got {word!r}")
    return bits


@dataclass(frozen=True)
class SupportConfig:
    """A two-way eventually periodic configuration of the infinite line.

    Instances are immutable, canonicalised, hashable, and compare equal
    exactly when they denote the same bi-infinite word.  Use the
    constructors :meth:`finite`, :meth:`periodic` or :meth:`build` rather
    than the raw dataclass fields.
    """

    left: tuple[int, ...]
    core: tuple[int, ...]
    right: tuple[int, ...]
    lo: int

    # -- constructors ------------------------------------------------------

    @staticmethod
    def build(
        left: str | tuple[int, ...],
        core: str | tuple[int, ...] | list[int] | np.ndarray,
        right: str | tuple[int, ...],
        lo: int = 0,
    ) -> "SupportConfig":
        """General constructor; canonicalises its arguments."""
        lw = _parse_word(left)
        rw = _parse_word(right)
        if isinstance(core, str):
            cw = tuple(int(c) for c in core if c not in " _,")
        else:
            cw = tuple(int(b) for b in np.asarray(core, dtype=np.int64).ravel())
        if any(b not in (0, 1) for b in cw):
            raise ValueError("core must be binary")
        return SupportConfig._canonical(lw, cw, rw, lo)

    @staticmethod
    def finite(core: str | tuple[int, ...] | list[int] | np.ndarray,
               lo: int = 0) -> "SupportConfig":
        """A finite-support configuration over the quiescent background 0."""
        return SupportConfig.build("0", core, "0", lo)

    @staticmethod
    def periodic(word: str | tuple[int, ...]) -> "SupportConfig":
        """A purely periodic configuration, e.g. ``periodic('01')`` is the
        paper's alternating two-cycle witness."""
        return SupportConfig.build(word, (), word, 0)

    @staticmethod
    def _canonical(
        left: tuple[int, ...], core: tuple[int, ...],
        right: tuple[int, ...], lo: int,
    ) -> "SupportConfig":
        left = _minimal_period(left)
        right = _minimal_period(right)
        p, q = len(left), len(right)
        core = list(core)
        hi = lo + len(core)
        # Trim core cells that already agree with the adjacent background.
        while core and core[0] == left[lo % p]:
            core.pop(0)
            lo += 1
        while core and core[-1] == right[(hi - 1) % q]:
            core.pop()
            hi -= 1
        if not core:
            # Pure two-background configuration with a boundary at lo.
            period = math.lcm(p, q)
            if all(left[j % p] == right[j % q] for j in range(period)):
                # One uniform periodic word; lo is meaningless — fix it at 0.
                return SupportConfig(left=left, core=(), right=left, lo=0)
            # Slide the boundary left as far as the two words agree;
            # termination: they disagree somewhere within one lcm-period.
            while left[(lo - 1) % p] == right[(lo - 1) % q]:
                lo -= 1
            return SupportConfig(left=left, core=(), right=right, lo=lo)
        return SupportConfig(left=left, core=tuple(core), right=right, lo=lo)

    # -- observation -------------------------------------------------------

    @property
    def hi(self) -> int:
        """One past the last core position."""
        return self.lo + len(self.core)

    def value_at(self, pos: int) -> int:
        """The state of the cell at absolute position ``pos``."""
        if pos < self.lo:
            return self.left[pos % len(self.left)]
        if pos >= self.hi:
            return self.right[pos % len(self.right)]
        return self.core[pos - self.lo]

    def window_values(self, lo: int, hi: int) -> np.ndarray:
        """States over ``[lo, hi)`` as a ``uint8`` vector."""
        if hi < lo:
            raise ValueError(f"empty-reversed window [{lo}, {hi})")
        return np.array([self.value_at(p) for p in range(lo, hi)], dtype=np.uint8)

    def to_string(self, lo: int, hi: int) -> str:
        """Render ``[lo, hi)`` as a 0/1 string."""
        return "".join(str(self.value_at(p)) for p in range(lo, hi))

    def support(self) -> tuple[int, int] | None:
        """Extent ``(lo, hi)`` of the ones, for quiescent-background configs.

        Only meaningful when both backgrounds are ``0``; raises otherwise.
        Returns ``None`` for the all-zero configuration.
        """
        if self.left != (0,) or self.right != (0,):
            raise ValueError("support() requires quiescent backgrounds")
        ones = [self.lo + i for i, b in enumerate(self.core) if b]
        if not ones:
            return None
        return ones[0], ones[-1] + 1

    def ones_count(self) -> int | float:
        """Number of ones: finite for quiescent backgrounds, else ``inf``."""
        if 1 in self.left or 1 in self.right:
            return float("inf")
        return sum(self.core)

    def describe(self) -> str:
        left = "".join(map(str, self.left))
        right = "".join(map(str, self.right))
        core = "".join(map(str, self.core))
        return f"...({left})* [{self.lo}] {core or 'ε'} ({right})*..."


class InfiniteLine:
    """Descriptor for the two-way infinite line of a given rule radius.

    This is a thin façade bundling a radius with the module-level stepping
    functions, mirroring how finite spaces pair with
    :class:`repro.core.CellularAutomaton`.
    """

    def __init__(self, radius: int = 1):
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        self.radius = radius

    def describe(self) -> str:
        return f"InfiniteLine(radius={self.radius})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def _rule_radius(rule: "UpdateRule", memory: bool) -> int:
    """Radius implied by a rule's arity on the line, validating parity."""
    k = rule.arity
    if k is None:
        raise ValueError(
            "infinite-line stepping needs a fixed-arity rule; wrap symmetric "
            "rules with .with_arity(k)"
        )
    if memory:
        if k % 2 == 0 or k < 3:
            raise ValueError(f"with-memory 1-D rules need odd arity >= 3, got {k}")
        return (k - 1) // 2
    if k % 2 or k < 2:
        raise ValueError(f"memoryless 1-D rules need even arity >= 2, got {k}")
    return k // 2


def _window_positions(pos: int, radius: int, memory: bool) -> list[int]:
    if memory:
        return list(range(pos - radius, pos + radius + 1))
    return [pos + d for d in range(-radius, radius + 1) if d != 0]


def _step_word(rule: "UpdateRule", word: tuple[int, ...], radius: int,
               memory: bool) -> tuple[int, ...]:
    """Image of a purely periodic configuration: periodic with the same period."""
    p = len(word)
    out = []
    for j in range(p):
        inputs = [word[q % p] for q in _window_positions(j, radius, memory)]
        out.append(rule.evaluate(inputs))
    return tuple(out)


def infinite_step(rule: "UpdateRule", config: SupportConfig,
                  memory: bool = True) -> SupportConfig:
    """One synchronous (parallel) step of the infinite-line CA.

    Exact: the result denotes the true image of the bi-infinite word under
    the global map, with no truncation.
    """
    radius = _rule_radius(rule, memory)
    new_left = _step_word(rule, config.left, radius, memory)
    new_right = _step_word(rule, config.right, radius, memory)
    lo, hi = config.lo - radius, config.hi + radius
    new_core = []
    for pos in range(lo, hi):
        inputs = [config.value_at(q) for q in _window_positions(pos, radius, memory)]
        new_core.append(rule.evaluate(inputs))
    return SupportConfig._canonical(new_left, tuple(new_core), new_right, lo)


def infinite_update_node(rule: "UpdateRule", config: SupportConfig, pos: int,
                         memory: bool = True) -> SupportConfig:
    """One *sequential* step: update only the cell at absolute position ``pos``."""
    radius = _rule_radius(rule, memory)
    inputs = [config.value_at(q) for q in _window_positions(pos, radius, memory)]
    new_bit = rule.evaluate(inputs)
    if new_bit == config.value_at(pos):
        return config
    lo = min(config.lo, pos)
    hi = max(config.hi, pos + 1)
    core = [config.value_at(q) for q in range(lo, hi)]
    core[pos - lo] = new_bit
    return SupportConfig._canonical(config.left, tuple(core), config.right, lo)


def infinite_orbit(
    rule: "UpdateRule",
    config: SupportConfig,
    max_steps: int = 1000,
    memory: bool = True,
) -> tuple[int, int, list[SupportConfig]]:
    """Iterate the parallel map and detect the orbit's eventual cycle.

    Returns ``(transient_length, period, cycle_configs)``; raises
    ``RuntimeError`` if no repeat is seen within ``max_steps`` (the orbit
    may genuinely diverge on the infinite line, e.g. a spreading wave).
    """
    seen: dict[SupportConfig, int] = {config: 0}
    trajectory = [config]
    current = config
    for t in range(1, max_steps + 1):
        current = infinite_step(rule, current, memory=memory)
        if current in seen:
            start = seen[current]
            return start, t - start, trajectory[start:]
        seen[current] = t
        trajectory.append(current)
    raise RuntimeError(
        f"no cycle within {max_steps} steps; orbit may be divergent"
    )
