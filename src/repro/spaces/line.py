"""One-dimensional cellular spaces: finite lines and rings.

These are the paper's primary setting.  A 1-D CA of radius ``r`` connects
each node to the ``r`` nodes on each side; the *ring* imposes the circular
boundary conditions under which all of the paper's finite-case results are
stated, while the *line* reads the quiescent state beyond its two ends.
"""

from __future__ import annotations

from repro.spaces.base import FiniteSpace
from repro.util.validation import check_node_index, check_positive

__all__ = ["Line", "Ring"]


class Ring(FiniteSpace):
    """A ring (cycle) of ``n`` nodes with interaction radius ``r``.

    The canonical input window of node ``i`` is left-to-right:
    ``(i-r, ..., i-1, [i,] i+1, ..., i+r)`` with indices mod ``n``.

    Requires ``n >= 2r + 1`` so the ``2r`` neighbors of a node are distinct;
    smaller rings would make some neighbor coincide with the node itself and
    the radius-r rule arity would be ill-defined.
    """

    def __init__(self, n: int, radius: int = 1):
        check_positive(n, "n")
        check_positive(radius, "radius")
        if n < 2 * radius + 1:
            raise ValueError(
                f"ring of {n} nodes cannot support radius {radius}; "
                f"need n >= {2 * radius + 1}"
            )
        self._n = n
        self.radius = radius

    @property
    def n(self) -> int:
        return self._n

    def neighbors(self, i: int) -> tuple[int, ...]:
        check_node_index(i, self._n)
        r, n = self.radius, self._n
        left = tuple((i + d) % n for d in range(-r, 0))
        right = tuple((i + d) % n for d in range(1, r + 1))
        return left + right

    def _window_with_memory(self, i: int) -> tuple[int, ...]:
        r, n = self.radius, self._n
        return tuple((i + d) % n for d in range(-r, r + 1))

    def describe(self) -> str:
        return f"Ring(n={self._n}, radius={self.radius})"


class Line(FiniteSpace):
    """A finite path of ``n`` nodes with interaction radius ``r``.

    Positions beyond the ends read the quiescent state 0 (sentinel ``-1`` in
    the window), so every node still has a full-width window and table rules
    of arity ``2r + 1`` apply uniformly — the standard "fixed boundary"
    convention for truncating the paper's infinite line.
    """

    def __init__(self, n: int, radius: int = 1):
        check_positive(n, "n")
        check_positive(radius, "radius")
        self._n = n
        self.radius = radius

    @property
    def n(self) -> int:
        return self._n

    def _clip(self, j: int) -> int:
        return j if 0 <= j < self._n else self._QUIESCENT

    def neighbors(self, i: int) -> tuple[int, ...]:
        check_node_index(i, self._n)
        r = self.radius
        left = tuple(self._clip(i + d) for d in range(-r, 0))
        right = tuple(self._clip(i + d) for d in range(1, r + 1))
        return left + right

    def _window_with_memory(self, i: int) -> tuple[int, ...]:
        r = self.radius
        return tuple(self._clip(i + d) for d in range(-r, r + 1))

    def describe(self) -> str:
        return f"Line(n={self._n}, radius={self.radius})"
