"""Base classes for finite cellular spaces.

The performance-critical abstraction is the *window matrix*: for each node,
the ordered tuple of node indices feeding its local rule, padded to a common
width with a sentinel slot that always reads the quiescent state 0.  With the
window matrix in hand, one synchronous step over the whole automaton — or
over *all* ``2**n`` configurations at once — is a single NumPy gather plus a
vectorized rule application; no Python-level loop over nodes survives on the
hot path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property

import networkx as nx
import numpy as np
from scipy import sparse

__all__ = ["CellularSpace", "FiniteSpace"]


class CellularSpace(ABC):
    """A cellular space: nodes plus a neighborhood structure.

    Subclasses define :meth:`neighbors`; everything else (window matrices,
    adjacency, bipartiteness) is derived here.  The quiescent state is 0,
    following the paper's Definition 1.
    """

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of nodes.  Nodes are always indexed ``0 .. n-1``."""

    @abstractmethod
    def neighbors(self, i: int) -> tuple[int, ...]:
        """Ordered tuple of the distinct neighbors of node ``i`` (no self).

        The order is the canonical input order for non-symmetric local rules;
        1-D spaces list neighbors left to right, graph spaces in ascending
        index order.  Entries of ``-1`` denote *missing* neighbors (beyond a
        finite boundary) that read the quiescent state.
        """

    def describe(self) -> str:
        """One-line human-readable description (used by the CLI)."""
        return f"{type(self).__name__}(n={self.n})"


class FiniteSpace(CellularSpace):
    """Shared machinery for all finite spaces."""

    #: sentinel in window matrices: an index equal to ``n`` reads quiescent 0.
    _QUIESCENT = -1

    def input_window(self, i: int, memory: bool) -> tuple[int, ...]:
        """Ordered rule inputs for node ``i``; ``-1`` marks quiescent slots.

        With memory, the node's own index is inserted at its canonical
        position: the centre for 1-D windows (subclasses override
        :meth:`_window_with_memory` where the centre convention applies),
        the front for graph-like spaces.
        """
        if memory:
            return self._window_with_memory(i)
        return self.neighbors(i)

    def _window_with_memory(self, i: int) -> tuple[int, ...]:
        return (i, *self.neighbors(i))

    @cached_property
    def _windows_memory(self) -> tuple[np.ndarray, np.ndarray]:
        return self._build_windows(memory=True)

    @cached_property
    def _windows_memoryless(self) -> tuple[np.ndarray, np.ndarray]:
        return self._build_windows(memory=False)

    def windows(self, memory: bool) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(window_matrix, window_len)`` for vectorized stepping.

        ``window_matrix`` has shape ``(n, k_max)``; entry ``n`` (one past the
        last node) is the quiescent padding slot, so callers gather from the
        state vector extended by one trailing zero.  ``window_len`` gives
        each node's true window length (quiescent boundary slots included —
        they are genuine rule inputs reading state 0; only the padding used
        to rectangularise ragged windows is excluded).
        """
        return self._windows_memory if memory else self._windows_memoryless

    def _build_windows(self, memory: bool) -> tuple[np.ndarray, np.ndarray]:
        rows = [self.input_window(i, memory) for i in range(self.n)]
        lengths = np.array([len(r) for r in rows], dtype=np.int64)
        k_max = int(lengths.max()) if len(rows) else 0
        mat = np.full((self.n, k_max), self.n, dtype=np.int64)
        for i, row in enumerate(rows):
            for j, idx in enumerate(row):
                mat[i, j] = self.n if idx == self._QUIESCENT else idx
        return mat, lengths

    @property
    def uniform_window(self) -> int | None:
        """Common with-memory window length if all nodes share one, else None.

        Non-symmetric table rules require a uniform window.
        """
        _, lengths = self.windows(memory=True)
        if len(lengths) and np.all(lengths == lengths[0]):
            return int(lengths[0])
        return None

    @cached_property
    def graph(self) -> nx.Graph:
        """The underlying undirected graph (quiescent slots dropped)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for i in range(self.n):
            for j in self.neighbors(i):
                if j != self._QUIESCENT and j != i:
                    g.add_edge(i, j)
        return g

    def adjacency_matrix(self) -> sparse.csr_matrix:
        """Symmetric 0/1 adjacency matrix (CSR), for the energy machinery."""
        rows, cols = [], []
        for i in range(self.n):
            for j in self.neighbors(i):
                if j != self._QUIESCENT and j != i:
                    rows.append(i)
                    cols.append(j)
        data = np.ones(len(rows), dtype=np.int64)
        mat = sparse.csr_matrix(
            (data, (rows, cols)), shape=(self.n, self.n), dtype=np.int64
        )
        # Neighborhoods are symmetric in every space we build, but a subclass
        # bug would silently break the Lyapunov results; fail loudly instead.
        if (mat != mat.T).nnz:
            raise ValueError("space has a non-symmetric neighborhood relation")
        mat.data[:] = 1
        return mat

    def is_bipartite(self) -> bool:
        """Whether the underlying graph is bipartite.

        Bipartiteness is the structural hook for the paper's two-cycle
        constructions: alternating configurations over a bipartition give
        parallel MAJORITY two-cycles.
        """
        return nx.is_bipartite(self.graph)

    def bipartition(self) -> tuple[frozenset[int], frozenset[int]]:
        """A 2-colouring of the nodes; raises if the graph is odd-cyclic."""
        left, right = nx.bipartite.sets(self.graph)
        return frozenset(left), frozenset(right)

    def degree(self, i: int) -> int:
        """Number of actual (non-quiescent, non-self) neighbors of ``i``."""
        return sum(
            1 for j in self.neighbors(i) if j != self._QUIESCENT and j != i
        )

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
