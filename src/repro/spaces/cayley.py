"""Cayley-graph cellular spaces.

The general convergence result the paper invokes (its Proposition 1, after
Garzon and Goles–Martinez) is stated for CA over regular Cayley graphs.
``CayleySpace`` realises Cayley graphs of the cyclic group ``Z_n`` — rings
are the special case with generators ``{1, ..., r}`` — and
:func:`cayley_product` builds Cayley graphs of direct products
``Z_{n1} x ... x Z_{nk}`` (toroidal grids are the two-factor case).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.spaces.base import FiniteSpace
from repro.util.validation import check_node_index, check_positive

__all__ = ["CayleySpace", "cayley_product"]


class CayleySpace(FiniteSpace):
    """Cayley graph of ``Z_n`` with a symmetric generator set.

    ``generators`` is any iterable of non-zero residues; the set is closed
    under negation automatically so the graph is undirected.  Node ``i`` is
    adjacent to ``i + g (mod n)`` for every generator ``g``.
    """

    def __init__(self, n: int, generators: Iterable[int]):
        check_positive(n, "n")
        gens: set[int] = set()
        for g in generators:
            g %= n
            if g == 0:
                raise ValueError("0 is not a valid Cayley generator")
            gens.add(g)
            gens.add((-g) % n)
        if not gens:
            raise ValueError("generator set must be non-empty")
        self._n = n
        self.generators = tuple(sorted(gens))

    @property
    def n(self) -> int:
        return self._n

    def neighbors(self, i: int) -> tuple[int, ...]:
        check_node_index(i, self._n)
        seen: list[int] = []
        for g in self.generators:
            j = (i + g) % self._n
            if j != i and j not in seen:
                seen.append(j)
        return tuple(sorted(seen))

    def describe(self) -> str:
        return f"CayleySpace(Z_{self._n}, generators={self.generators})"


class _ProductCayley(FiniteSpace):
    """Cayley graph of ``Z_{d1} x ... x Z_{dk}`` (built by cayley_product)."""

    def __init__(self, dims: tuple[int, ...], generators: tuple[tuple[int, ...], ...]):
        self.dims = dims
        self.generators = generators
        self._n = 1
        for d in dims:
            self._n *= d

    @property
    def n(self) -> int:
        return self._n

    def coords(self, i: int) -> tuple[int, ...]:
        """Mixed-radix coordinates of node ``i`` (last dimension fastest)."""
        check_node_index(i, self._n)
        out = []
        for d in reversed(self.dims):
            i, c = divmod(i, d)
            out.append(c)
        return tuple(reversed(out))

    def index(self, coords: Sequence[int]) -> int:
        """Node index of a coordinate tuple (entries taken mod each dim)."""
        if len(coords) != len(self.dims):
            raise ValueError(
                f"expected {len(self.dims)} coordinates, got {len(coords)}"
            )
        i = 0
        for c, d in zip(coords, self.dims):
            i = i * d + (c % d)
        return i

    def neighbors(self, i: int) -> tuple[int, ...]:
        base = self.coords(i)
        seen: list[int] = []
        for gen in self.generators:
            j = self.index(tuple(b + g for b, g in zip(base, gen)))
            if j != i and j not in seen:
                seen.append(j)
        return tuple(sorted(seen))

    def describe(self) -> str:
        dims = "x".join(f"Z_{d}" for d in self.dims)
        return f"CayleyProduct({dims}, {len(self.generators)} generators)"


def cayley_product(
    dims: Sequence[int], generators: Iterable[Sequence[int]]
) -> _ProductCayley:
    """Cayley graph of a direct product of cyclic groups.

    ``dims`` gives the cyclic factors; each generator is a tuple of offsets,
    one per factor, and the set is closed under negation.  Example: the
    ``m x k`` von Neumann torus is
    ``cayley_product((m, k), [(1, 0), (0, 1)])``.
    """
    dims = tuple(int(d) for d in dims)
    for d in dims:
        check_positive(d, "dimension")
    gens: set[tuple[int, ...]] = set()
    for gen in generators:
        gen = tuple(int(g) % d for g, d in zip(gen, dims))
        if len(gen) != len(dims):
            raise ValueError(
                f"generator arity {len(gen)} does not match {len(dims)} factors"
            )
        if all(g == 0 for g in gen):
            raise ValueError("the identity is not a valid Cayley generator")
        gens.add(gen)
        gens.add(tuple((-g) % d for g, d in zip(gen, dims)))
    if not gens:
        raise ValueError("generator set must be non-empty")
    return _ProductCayley(dims, tuple(sorted(gens)))


def hypercube_as_cayley(dimension: int) -> _ProductCayley:
    """The d-cube as the Cayley graph of ``Z_2^d`` with unit generators.

    Provided for cross-validation against :class:`repro.spaces.Hypercube`.
    """
    check_positive(dimension, "dimension")
    dims = (2,) * dimension
    gens = []
    for b in range(dimension):
        g = [0] * dimension
        g[b] = 1
        gens.append(tuple(g))
    return cayley_product(dims, gens)
