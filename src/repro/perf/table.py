"""Compiled lookup-table sweep backend.

At construction, every node's local rule is lowered to a ``2**k`` lookup
table (:meth:`repro.core.rules.UpdateRule.lut`, deduplicated across nodes
sharing a rule object and window width).  A chunk of the sweep is then
pure integer bit-extraction plus one fancy-index gather per node — no
uint8 unpacking of configurations, no per-chunk ``apply_windows``
dispatch, no ``(chunk, n, k)`` window tensor.

For contiguous windows (rings — the paper's spaces) the per-node window
code is a single 2-shift rotation of the packed codes instead of ``k``
bit extractions.
"""

from __future__ import annotations

import numpy as np

from repro.perf.base import CHUNK, BackendUnsupported, SweepBackend

__all__ = ["TableBackend", "MAX_LUT_WIDTH"]

#: widest window a LUT is compiled for (2**20 uint8 entries = 1 MB)
MAX_LUT_WIDTH = 20

#: widest window that also gets a per-node pre-shifted int64 table
#: (2**12 entries = 32 KB per node — L1/L2-resident)
_PRESHIFT_MAX_WIDTH = 12


class TableBackend(SweepBackend):
    """Per-node rule tables + integer bit gathers."""

    name = "table"

    @classmethod
    def supports(cls, ca) -> str | None:
        k_max = int(ca._lengths.max()) if ca.n else 0
        if k_max > MAX_LUT_WIDTH:
            return (
                f"window width {k_max} exceeds the LUT ceiling "
                f"{MAX_LUT_WIDTH}"
            )
        return None

    def __init__(self, ca):
        super().__init__(ca)
        reason = self.supports(ca)
        if reason is not None:
            raise BackendUnsupported(
                f"table backend cannot run {ca.describe()}: {reason}"
            )
        n = ca.n
        self._mask_n = np.int64((1 << n) - 1)
        luts: dict[tuple[int, int], np.ndarray] = {}
        self._luts: list[np.ndarray] = []
        #: per node: (rotation shift, width) for contiguous ring windows,
        #: else None (fall back to per-bit extraction)
        self._rot: list[tuple[int, int] | None] = []
        #: per node: (sources, positions) with quiescent slots dropped
        self._gather: list[tuple[np.ndarray, np.ndarray]] = []
        #: per node: the LUT pre-upcast to int64 and pre-shifted by the
        #: node index, so a sweep chunk is gather + or — no per-chunk
        #: astype/shift.  Only for narrow windows (wide pre-shifted
        #: tables would cost 8 bytes/entry per *node*).
        self._lut64: list[np.ndarray | None] = []
        for i in range(n):
            k = int(ca._lengths[i])
            rule = ca.rule_at(i)
            key = (id(rule), k)
            if key not in luts:
                luts[key] = np.ascontiguousarray(rule.lut(k), dtype=np.uint8)
            self._luts.append(luts[key])
            if k <= _PRESHIFT_MAX_WIDTH:
                self._lut64.append(luts[key].astype(np.int64) << i)
            else:
                self._lut64.append(None)
            window = np.asarray(ca._windows[i][:k], dtype=np.int64)
            self._rot.append(self._contiguous(window, k))
            real = window != n  # sentinel slots always read 0: skip them
            self._gather.append(
                (window[real], np.arange(k, dtype=np.int64)[real])
            )

    def _contiguous(self, window: np.ndarray, k: int) -> tuple[int, int] | None:
        """``(shift, k)`` when the window is ``shift .. shift+k-1 mod n``."""
        n = self.ca.n
        if k == 0 or np.any(window == n):
            return None
        shift = int(window[0])
        expect = (shift + np.arange(k, dtype=np.int64)) % n
        if np.array_equal(window, expect):
            return shift, k
        return None

    def _wcodes(self, i: int, codes: np.ndarray) -> np.ndarray:
        """Packed window code of node ``i`` for each configuration code."""
        rot = self._rot[i]
        if rot is not None:
            shift, k = rot
            mask = np.int64((1 << k) - 1)
            if shift == 0:
                return codes & mask
            if shift + k <= self.ca.n:
                # window sits inside the code: plain shift + mask
                return (codes >> shift) & mask
            # window wraps past bit n-1: rotate the n-bit codes right by
            # ``shift`` (window bit j reads config bit (shift + j) mod n)
            low = codes & np.int64((1 << shift) - 1)
            rotated = (codes >> shift) | (low << (self.ca.n - shift))
            return rotated & mask
        sources, positions = self._gather[i]
        out = np.zeros(codes.shape, dtype=np.int64)
        for src, pos in zip(sources.tolist(), positions.tolist()):
            out |= ((codes >> src) & 1) << pos
        return out

    def step_all_range(self, lo: int, hi: int) -> np.ndarray:
        codes = np.arange(lo, hi, dtype=np.int64)
        out = np.zeros(hi - lo, dtype=np.int64)
        for i in range(self.ca.n):
            lut64 = self._lut64[i]
            if lut64 is not None:
                out |= lut64[self._wcodes(i, codes)]
            else:
                bits = self._luts[i][self._wcodes(i, codes)]
                out |= bits.astype(np.int64) << i
        return out

    def node_successors_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        codes = np.arange(lo, hi, dtype=np.int64)
        new_bits = self._luts[i][self._wcodes(i, codes)].astype(np.int64)
        old_bits = (codes >> i) & 1
        return codes ^ ((old_bits ^ new_bits) << i)

    def sweep_all_nodes_range(self, lo: int, hi: int, out: np.ndarray) -> None:
        codes = np.arange(lo, hi, dtype=np.int64)
        for i in range(self.ca.n):
            new_bits = self._luts[i][self._wcodes(i, codes)].astype(np.int64)
            old_bits = (codes >> i) & 1
            out[i] = codes ^ ((old_bits ^ new_bits) << i)

    def transient_bytes(self) -> int:
        # codes + window codes + packed output (int64) + gathered bits
        # (uint8) + the int64 upcast of the gather
        return CHUNK * (8 + 8 + 8 + 1 + 8)
