"""Pluggable sweep backends for whole-phase-space enumeration.

Every experiment in the paper reduces to whole-space sweeps — the packed
parallel successor (``step_all``) or single-node sequential successors
(``node_successors``) of all ``2**n`` configurations.  This package holds
the kernels that compute them, behind one registry:

``numpy``
    The generic window-gather reference (works for every space and rule).
``table``
    Per-node rules compiled to ``2**k`` lookup tables; a chunk is integer
    bit extraction + one gather per node.
``bitplane``
    SWAR kernels packing 64 configurations per ``uint64`` word; threshold
    / XOR / small-arity (elementary) rules as pure bitwise ops.
``process``
    A multiprocessing shard layer over any serial backend, merging into a
    shared-memory successor array with honest budget/frontier semantics.

Selection: ``CellularAutomaton(backend=...)`` > the ``REPRO_BACKEND`` env
var > ``auto``.  The ``auto`` policy picks the fastest applicable kernel —
bitplane when every node's rule lowers to a bit kernel, table when the
windows fit a LUT, numpy otherwise — and wraps it in process sharding for
spaces of at least ``2**PROCESS_MIN_N`` configurations on multi-CPU hosts.
"""

from __future__ import annotations

import os

from repro.perf.base import (
    CHUNK,
    MAX_SWEEP_N,
    BackendUnsupported,
    NumpyBackend,
    SweepBackend,
)
from repro.perf.bitplane import BitplaneBackend, lower_bit_kernel
from repro.perf.process import ProcessBackend, default_workers
from repro.perf.supervise import (
    ShardFailed,
    default_max_shard_retries,
    default_max_worker_deaths,
    default_shard_timeout_s,
)
from repro.perf.table import TableBackend

__all__ = [
    "CHUNK",
    "MAX_SWEEP_N",
    "PROCESS_MIN_N",
    "BackendUnsupported",
    "BACKENDS",
    "BACKEND_NAMES",
    "SweepBackend",
    "NumpyBackend",
    "TableBackend",
    "BitplaneBackend",
    "ProcessBackend",
    "ShardFailed",
    "lower_bit_kernel",
    "default_workers",
    "default_max_shard_retries",
    "default_max_worker_deaths",
    "default_shard_timeout_s",
    "resolve_backend",
    "resolve_serial_backend",
]

#: env var selecting the default backend (``auto`` when unset)
BACKEND_ENV = "REPRO_BACKEND"

#: smallest n the ``auto`` policy shards across processes (below this the
#: fork + shared-memory overhead outweighs the sweep itself)
PROCESS_MIN_N = 22

BACKENDS: dict[str, type[SweepBackend]] = {
    "numpy": NumpyBackend,
    "table": TableBackend,
    "bitplane": BitplaneBackend,
    "process": ProcessBackend,
}

#: ``auto`` plus the concrete backends, in documentation order
BACKEND_NAMES = ("auto", "bitplane", "table", "numpy", "process")

#: serial preference order of the ``auto`` policy
_AUTO_SERIAL = ("bitplane", "table", "numpy")


def _check_name(name: str) -> str:
    name = name.strip().lower()
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown sweep backend {name!r} (choose from "
            f"{', '.join(BACKEND_NAMES)})"
        )
    return name


def resolve_serial_backend(ca, name: str = "auto") -> SweepBackend:
    """Construct the serial backend ``name`` for ``ca`` (``auto`` picks the
    fastest applicable of bitplane > table > numpy)."""
    name = _check_name(name)
    if name == "process":
        raise ValueError("process is not a serial backend")
    if name != "auto":
        return BACKENDS[name](ca)
    for candidate in _AUTO_SERIAL:
        if BACKENDS[candidate].supports(ca) is None:
            return BACKENDS[candidate](ca)
    return NumpyBackend(ca)  # pragma: no cover - numpy always applies


def resolve_backend(
    ca, name: str | None = None, workers: int | None = None
) -> SweepBackend:
    """Backend for ``ca`` per the explicit ``name`` > env > ``auto`` chain.

    ``workers`` only matters for the process backend (explicit count >
    ``REPRO_WORKERS`` > CPU count).  ``auto`` adds process sharding only
    for spaces of at least ``2**PROCESS_MIN_N`` configurations and more
    than one available worker.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV, "").strip() or "auto"
    name = _check_name(name)
    if name == "process":
        return ProcessBackend(ca, inner="auto", workers=workers)
    if name != "auto":
        return BACKENDS[name](ca)
    effective = workers if workers is not None else default_workers()
    if (
        ca.n >= PROCESS_MIN_N
        and effective > 1
        and ProcessBackend.supports(ca) is None
    ):
        return ProcessBackend(ca, inner="auto", workers=workers)
    return resolve_serial_backend(ca, "auto")
