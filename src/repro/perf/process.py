"""Multiprocess sharded sweep backend.

Splits ``[start, 2**n)`` into contiguous shards, computes each shard in a
worker process with a serial kernel (any of the other backends), and
merges the results into the caller's successor array through
``multiprocessing.shared_memory`` buffers — zero-copy on the worker side,
one ``memcpy`` per shard on the parent side (which also works when the
parent array is a resumed disk-backed memmap).

Governance stays honest across the process boundary:

* the parent consults the :class:`~repro.core.budget.Budget` before each
  shard dispatch and while waiting for results, and *charges* shards only
  as the contiguous completed prefix advances — so a trip returns exactly
  the resumable ``next_lo`` frontier the serial builders return, with
  identical deterministic accounting;
* a shared :class:`multiprocessing.Event` cancel flag is polled by every
  worker between chunks, so Ctrl-C / deadline trips wind the pool down
  cooperatively instead of leaving orphans (workers also ignore SIGINT —
  the parent owns the signal);
* each worker resets its forked copy of the obs metrics registry on
  startup and ships a final snapshot back on shutdown; the parent folds
  those into its own registry via ``REGISTRY.merge_snapshot``.

Workers are forked, so arbitrary rule objects (closures included) need no
pickling; the backend is unsupported where ``fork`` is unavailable.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import signal
from collections import deque
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.perf.base import CHUNK, BackendUnsupported, SweepBackend

__all__ = ["ProcessBackend", "DEFAULT_WORKERS_ENV"]

#: env var overriding the worker count (``CellularAutomaton(workers=...)``
#: and the CLI ``--workers`` flag take precedence)
DEFAULT_WORKERS_ENV = "REPRO_WORKERS"

#: seconds between budget/liveness checks while waiting on worker results
_POLL_S = 0.1


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` if set, else the CPU count."""
    env = os.environ.get(DEFAULT_WORKERS_ENV, "").strip()
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def _worker_main(inner, task_q, result_q, cancel) -> None:
    """Worker loop: shards in, per-shard completions + a final metrics out.

    ``inner`` is the parent's fully constructed serial backend, inherited
    by fork (rules never cross a pickle boundary).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # The forked registry starts as a copy of the parent's counts; reset so
    # the final snapshot holds only this worker's own increments.
    obs.REGISTRY.reset()
    while True:
        task = task_q.get()
        if task is None:
            result_q.put(("metrics", os.getpid(), obs.REGISTRY.snapshot()))
            return
        sid, mode, node, lo, hi, shm_name = task
        # Forked workers share the parent's resource tracker, so attaching
        # here neither duplicates nor steals ownership of the block.
        shm = shared_memory.SharedMemory(name=shm_name)
        try:
            out = np.ndarray(hi - lo, dtype=np.int64, buffer=shm.buf)
            ok = True
            for clo in range(lo, hi, CHUNK):
                if cancel.is_set():
                    ok = False
                    break
                chi = min(clo + CHUNK, hi)
                if mode == "step":
                    out[clo - lo : chi - lo] = inner.step_all_range(clo, chi)
                else:
                    out[clo - lo : chi - lo] = inner.node_successors_range(
                        node, clo, chi
                    )
            del out
        finally:
            shm.close()
        result_q.put(("done", sid, ok))


class ProcessBackend(SweepBackend):
    """Shard whole-space sweeps across forked worker processes."""

    name = "process"
    is_sharded = True

    @classmethod
    def supports(cls, ca) -> str | None:
        if "fork" not in mp.get_all_start_methods():  # pragma: no cover
            return "requires the fork start method (POSIX hosts)"
        return None

    def __init__(self, ca, inner: str = "auto", workers: int | None = None):
        super().__init__(ca)
        reason = self.supports(ca)
        if reason is not None:  # pragma: no cover - POSIX-only container
            raise BackendUnsupported(
                f"process backend cannot run {ca.describe()}: {reason}"
            )
        from repro.perf import resolve_serial_backend

        self._inner = resolve_serial_backend(ca, inner)
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")

    def describe(self) -> str:
        return f"process[{self._inner.name} x{self.workers}]"

    # -- serial kernels (delegated) --------------------------------------------
    # Direct range calls (single chunks, small sweeps) skip the pool.

    def step_all_range(self, lo: int, hi: int) -> np.ndarray:
        return self._inner.step_all_range(lo, hi)

    def node_successors_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        return self._inner.node_successors_range(i, lo, hi)

    def sweep_all_nodes_range(self, lo: int, hi: int, out: np.ndarray) -> None:
        self._inner.sweep_all_nodes_range(lo, hi, out)

    def transient_bytes(self) -> int:
        # every worker holds one chunk of inner scratch plus its shard's
        # shared int64 output buffer in flight
        return self.workers * (
            self._inner.transient_bytes() + 8 * self._shard_len()
        )

    # -- sharded governed sweep ------------------------------------------------

    def _shard_len(self, span: int | None = None) -> int:
        """Shard size: ~4 shards per worker for load balance, CHUNK-aligned."""
        if span is None:
            span = 1 << self.ca.n
        per = span // (self.workers * 4) or span
        return max(CHUNK, (per // CHUNK) * CHUNK)

    def governed_sweep(
        self,
        out: np.ndarray,
        budget,
        *,
        start: int = 0,
        per_state: int = 0,
        mode: str = "step",
        node: int | None = None,
        on_prefix=None,
    ) -> tuple[int, str | None]:
        """Fill ``out[start:]`` by sharding across the worker pool.

        Returns ``(next_lo, reason)``: ``reason`` is None when the sweep
        completed, else the budget trip reason and ``next_lo`` the end of
        the contiguous completed-and-charged prefix — the honest resume
        point.  ``on_prefix(lo, hi)`` fires in order as the prefix grows
        (the phase-space builder streams fixed-point counts through it).
        """
        total = int(out.size)
        if start >= total:
            return total, None
        shard_len = self._shard_len(total - start)
        shards = [
            (lo, min(lo + shard_len, total))
            for lo in range(start, total, shard_len)
        ]
        transient = self._inner.transient_bytes()

        # Start the shared-memory resource tracker *before* forking, so the
        # workers inherit it: their attaches then register as no-op
        # duplicates with the parent's tracker instead of each worker
        # spawning a private tracker that "cleans up" blocks it never owned.
        try:  # pragma: no cover - private but stable since 3.8
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass

        ctx = mp.get_context("fork")
        task_q: mp.Queue = ctx.Queue()
        result_q: mp.Queue = ctx.Queue()
        cancel = ctx.Event()
        nworkers = min(self.workers, len(shards))
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(self._inner, task_q, result_q, cancel),
                daemon=True,
            )
            for _ in range(nworkers)
        ]
        with obs.span(
            "perf.process.sweep",
            mode=mode,
            total=total,
            start=start,
            shards=len(shards),
            workers=nworkers,
            inner=self._inner.name,
        ) as sweep_span:
            for p in procs:
                p.start()

            pending: deque[int] = deque(range(len(shards)))
            inflight: dict[int, shared_memory.SharedMemory] = {}
            status: dict[int, bool] = {}
            next_merge = 0  # first shard not yet folded into the prefix
            uncharged = 0  # dispatched states not yet charged to the budget
            reason: str | None = None

            def _advance_prefix() -> None:
                nonlocal next_merge, uncharged
                while next_merge < len(shards) and status.get(next_merge):
                    lo, hi = shards[next_merge]
                    budget.charge(states=hi - lo, bytes_=per_state * (hi - lo))
                    uncharged -= hi - lo
                    if on_prefix is not None:
                        on_prefix(lo, hi)
                    next_merge += 1

            try:
                while pending or inflight:
                    while (
                        pending and reason is None and len(inflight) < 2 * nworkers
                    ):
                        sid = pending[0]
                        lo, hi = shards[sid]
                        # Project every dispatched-but-uncharged shard too,
                        # so dispatch-ahead trips at the same accounted
                        # footprint the serial chunk loop would (which
                        # checks with all prior chunks already charged).
                        reason = budget.over(
                            pending_bytes=transient
                            + per_state * (uncharged + hi - lo),
                            pending_states=uncharged,
                        )
                        if reason is not None:
                            break
                        shm = shared_memory.SharedMemory(
                            create=True, size=(hi - lo) * 8
                        )
                        inflight[sid] = shm
                        pending.popleft()
                        uncharged += hi - lo
                        task_q.put((sid, mode, node, lo, hi, shm.name))
                    if reason is not None:
                        # Memory/state trips only stop *dispatch* — shards
                        # already in flight were admitted by the projection
                        # and are allowed to finish (the serial loop would
                        # have completed those chunks too).  Cancellation
                        # and deadline trips interrupt the workers.
                        if reason.startswith(("cancelled", "deadline")):
                            cancel.set()
                        pending.clear()
                        if not inflight:
                            break
                    try:
                        msg = result_q.get(timeout=_POLL_S)
                    except queue.Empty:
                        # Zero-state ping so an attached progress reporter
                        # keeps emitting heartbeats while shards run
                        # elsewhere and nothing is being charged here.
                        cb = getattr(budget, "on_charge", None)
                        if cb is not None:
                            cb(budget, 0)
                        if reason is None:
                            reason = budget.over()
                            if reason is not None:
                                continue
                        if not any(p.is_alive() for p in procs) and inflight:
                            raise RuntimeError(
                                "process backend: all workers died with "
                                f"{len(inflight)} shard(s) outstanding"
                            )
                        continue
                    kind, sid, ok = msg
                    if kind != "done":  # pragma: no cover - metrics come later
                        continue
                    shm = inflight.pop(sid)
                    lo, hi = shards[sid]
                    if ok:
                        # Merge even past a trip: the data is correct, and a
                        # memmap-backed resume benefits from it; only prefix
                        # shards are *charged* and counted in the frontier.
                        out[lo:hi] = np.ndarray(
                            hi - lo, dtype=np.int64, buffer=shm.buf
                        )
                    status[sid] = ok
                    shm.close()
                    shm.unlink()
                    if ok:
                        _advance_prefix()
            finally:
                if reason is not None:
                    cancel.set()
                for _ in procs:
                    task_q.put(None)
                for p in procs:
                    p.join(timeout=5.0)
                # Fold each worker's metrics into the parent registry.
                while True:
                    try:
                        msg = result_q.get_nowait()
                    except queue.Empty:
                        break
                    if msg[0] == "metrics":
                        obs.REGISTRY.merge_snapshot(msg[2])
                for p in procs:  # pragma: no cover - stuck-worker safety net
                    if p.is_alive():
                        p.terminate()
                        p.join(timeout=1.0)
                for shm in inflight.values():  # pragma: no cover - trip races
                    shm.close()
                    shm.unlink()
            next_lo = shards[next_merge][0] if next_merge < len(shards) else total
            sweep_span.set(next_lo=next_lo, truncated=reason)
            obs.inc("perf.process.sweeps")
            obs.inc("perf.process.shards_done", next_merge)
            return next_lo, reason
