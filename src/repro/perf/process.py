"""Multiprocess sharded sweep backend with a supervised, self-healing pool.

Splits ``[start, 2**n)`` into contiguous shards, computes each shard in a
worker process with a serial kernel (any of the other backends), and
merges the results into the caller's successor array through
``multiprocessing.shared_memory`` buffers — zero-copy on the worker side,
one ``memcpy`` per shard on the parent side (which also works when the
parent array is a resumed disk-backed memmap).

Worker failure never changes an answer, only its latency (shards are
order-independent and recomputable — see :mod:`repro.perf.supervise`):

* every dispatched shard carries a :class:`~repro.perf.supervise.ShardLease`
  (holder pid, attempt count, stuck deadline); workers acknowledge each
  shard with a ``start`` message and ship per-shard metric snapshots;
* the parent's wait loop reaps dead workers (``is_alive``/``exitcode``),
  returns their leased shards to the pending queue, SIGKILLs holders
  past their lease deadline, and respawns replacements up to a death
  budget (``REPRO_MAX_WORKER_DEATHS``, default ``max(4, 2*workers)``);
* workers catch kernel exceptions and ship structured
  ``("error", sid, ...)`` results instead of dying; a shard that fails
  ``max_shard_retries`` times (default 2, ``REPRO_MAX_SHARD_RETRIES``)
  across distinct workers is classified *poison* — the parent computes
  it inline with the serial inner backend, and if that also raises it
  surfaces a typed :class:`~repro.perf.supervise.ShardFailed` (never a
  hang, never a bare ``RuntimeError``);
* when the pool collapses (death budget exhausted) the sweep degrades
  gracefully: the remaining range is finished serially with a warning
  and a ``perf.process.degraded`` gauge, preserving exact
  governed-prefix accounting and ``next_lo`` resume semantics.

Governance stays honest across the process boundary:

* the parent consults the :class:`~repro.core.budget.Budget` before each
  shard dispatch and while waiting for results, and *charges* shards only
  as the contiguous completed prefix advances — so a trip returns exactly
  the resumable ``next_lo`` frontier the serial builders return, with
  identical deterministic accounting;
* a shared :class:`multiprocessing.Event` cancel flag is polled by every
  worker between chunks, so Ctrl-C / deadline trips wind the pool down
  cooperatively instead of leaving orphans (workers also ignore SIGINT —
  the parent owns the signal); a hung worker that never polls is bounded
  by the wind-down grace and then killed, so a deadline trip returns
  promptly even under ``worker-hang`` faults.

Workers are forked, so arbitrary rule objects (closures included) need no
pickling; the backend is unsupported where ``fork`` is unavailable.

Fault sites (:mod:`repro.harness.faults`): each worker probes
``perf.worker.w{wid}.dispatch`` on shard receipt,
``perf.worker.w{wid}.chunk`` before each chunk and
``perf.worker.w{wid}.premerge`` before shipping the result — arm them
with the ``worker-crash`` / ``worker-hang`` / ``worker-poison`` kinds to
chaos-test the pool.  The parent probes ``perf.process.fallback`` inside
the poison/degraded serial path.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import signal
import time
import traceback
import warnings
from collections import deque
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.harness import faults
from repro.perf.base import CHUNK, BackendUnsupported, SweepBackend
from repro.perf.supervise import (
    ShardFailed,
    ShardLease,
    Supervisor,
    WorkerHandle,
    default_max_shard_retries,
    default_max_worker_deaths,
    default_shard_timeout_s,
)

__all__ = ["ProcessBackend", "DEFAULT_WORKERS_ENV", "default_workers"]

#: env var overriding the worker count (``CellularAutomaton(workers=...)``
#: and the CLI ``--workers`` flag take precedence)
DEFAULT_WORKERS_ENV = "REPRO_WORKERS"

#: seconds between budget/liveness checks while waiting on worker results
_POLL_S = 0.1

#: seconds a cancel/deadline wind-down waits for in-flight shards before
#: abandoning them (a hung worker never acknowledges the cancel Event;
#: this bounds "never hangs past the budget deadline")
_WINDDOWN_GRACE_S = 5.0

#: seconds the shutdown path waits per worker before SIGKILLing it
_SHUTDOWN_GRACE_S = 5.0


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` if set, else the CPU count.

    A non-numeric or ``< 1`` value raises a one-line ``ValueError`` (the
    CLI renders it as a usage error instead of an ``int()`` traceback).
    """
    env = os.environ.get(DEFAULT_WORKERS_ENV, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{DEFAULT_WORKERS_ENV} must be a positive integer, "
                f"got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"{DEFAULT_WORKERS_ENV} must be >= 1, got {value}"
            )
        return value
    return max(1, os.cpu_count() or 1)


def _flush_snapshot() -> dict:
    """This worker's metric increments since the last flush."""
    snapshot = obs.REGISTRY.snapshot()
    obs.REGISTRY.reset()
    return snapshot


def _worker_main(wid, inner, task_q, result_q, cancel, kernel=None) -> None:
    """Worker loop: shards in, per-shard completions + metric deltas out.

    ``inner`` is the parent's fully constructed serial backend, inherited
    by fork (rules never cross a pickle boundary); ``kernel`` is the
    attractor or Monte-Carlo kernel for ``mode == "attractor"`` /
    ``"mc"`` shards, inherited the same way.  Kernel exceptions are caught and shipped as structured
    ``error`` results — a worker only dies from the outside (SIGKILL,
    OOM) or from a ``worker-crash`` fault.  Metrics are flushed alongside
    every shard completion, so an abnormal death loses at most the
    in-flight shard's increments.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # The forked registry starts as a copy of the parent's counts; reset so
    # snapshots hold only this worker's own increments.
    obs.REGISTRY.reset()
    while True:
        task = task_q.get()
        if task is None:
            result_q.put(("metrics", os.getpid(), _flush_snapshot()))
            return
        sid, mode, node, lo, hi, shm_name = task
        pid = os.getpid()
        result_q.put(("start", sid, pid))
        try:
            faults.inject(f"perf.worker.w{wid}.dispatch")
            # Forked workers share the parent's resource tracker, so
            # attaching here neither duplicates nor steals ownership.
            shm = shared_memory.SharedMemory(name=shm_name)
            try:
                ok = True
                if mode == "attractor":
                    from repro.perf.attractor import (
                        ATTRACTOR_CHUNK,
                        K_COUNTS,
                        merge_counts,
                    )

                    out = np.ndarray(K_COUNTS, dtype=np.int64, buffer=shm.buf)
                    # A re-dispatched shard reuses its original buffer:
                    # zero it so a dead worker's partial fold never
                    # double-counts.
                    out[:] = 0
                    for clo in range(lo, hi, ATTRACTOR_CHUNK):
                        if cancel.is_set():
                            ok = False
                            break
                        faults.inject(f"perf.worker.w{wid}.chunk")
                        chi = min(clo + ATTRACTOR_CHUNK, hi)
                        merge_counts(out, kernel.census_range(clo, chi))
                elif mode == "mc":
                    # Monte-Carlo shards speak the same counts-vector
                    # protocol as attractor shards, with the kernel
                    # supplying its own slot count, merge, and batch-
                    # aligned cancel-poll granularity.
                    out = np.ndarray(
                        kernel.counts_slots, dtype=np.int64, buffer=shm.buf
                    )
                    out[:] = 0
                    for clo in range(lo, hi, kernel.poll_chunk):
                        if cancel.is_set():
                            ok = False
                            break
                        faults.inject(f"perf.worker.w{wid}.chunk")
                        chi = min(clo + kernel.poll_chunk, hi)
                        kernel.merge(out, kernel.census_range(clo, chi))
                else:
                    out = np.ndarray(hi - lo, dtype=np.int64, buffer=shm.buf)
                    for clo in range(lo, hi, CHUNK):
                        if cancel.is_set():
                            ok = False
                            break
                        faults.inject(f"perf.worker.w{wid}.chunk")
                        chi = min(clo + CHUNK, hi)
                        if mode == "step":
                            out[clo - lo : chi - lo] = inner.step_all_range(
                                clo, chi
                            )
                        else:
                            out[clo - lo : chi - lo] = (
                                inner.node_successors_range(node, clo, chi)
                            )
                del out
            finally:
                shm.close()
            faults.inject(f"perf.worker.w{wid}.premerge")
        except Exception as exc:
            result_q.put(
                (
                    "error",
                    sid,
                    pid,
                    repr(exc),
                    traceback.format_exc(),
                    _flush_snapshot(),
                )
            )
            continue
        result_q.put(("done", sid, pid, ok, _flush_snapshot()))


class ProcessBackend(SweepBackend):
    """Shard whole-space sweeps across supervised forked worker processes."""

    name = "process"
    is_sharded = True

    @classmethod
    def supports(cls, ca) -> str | None:
        if "fork" not in mp.get_all_start_methods():  # pragma: no cover
            return "requires the fork start method (POSIX hosts)"
        return None

    def __init__(
        self,
        ca,
        inner: str = "auto",
        workers: int | None = None,
        *,
        max_shard_retries: int | None = None,
        max_worker_deaths: int | None = None,
        shard_timeout_s: float | None = None,
    ):
        super().__init__(ca)
        reason = self.supports(ca)
        if reason is not None:  # pragma: no cover - POSIX-only container
            raise BackendUnsupported(
                f"process backend cannot run {ca.describe()}: {reason}"
            )
        from repro.perf import resolve_serial_backend

        self._inner = resolve_serial_backend(ca, inner)
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.max_shard_retries = (
            max_shard_retries
            if max_shard_retries is not None
            else default_max_shard_retries()
        )
        if self.max_shard_retries < 1:
            raise ValueError(
                f"max_shard_retries must be >= 1, got {max_shard_retries}"
            )
        self.max_worker_deaths = (
            max_worker_deaths
            if max_worker_deaths is not None
            else default_max_worker_deaths(self.workers)
        )
        self.shard_timeout_s = (
            shard_timeout_s
            if shard_timeout_s is not None
            else default_shard_timeout_s()
        )

    def describe(self) -> str:
        return f"process[{self._inner.name} x{self.workers}]"

    # -- serial kernels (delegated) --------------------------------------------
    # Direct range calls (single chunks, small sweeps) skip the pool.

    def step_all_range(self, lo: int, hi: int) -> np.ndarray:
        return self._inner.step_all_range(lo, hi)

    def node_successors_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        return self._inner.node_successors_range(i, lo, hi)

    def sweep_all_nodes_range(self, lo: int, hi: int, out: np.ndarray) -> None:
        self._inner.sweep_all_nodes_range(lo, hi, out)

    def transient_bytes(self) -> int:
        # every worker holds one chunk of inner scratch plus its shard's
        # shared int64 output buffer in flight
        return self.workers * (
            self._inner.transient_bytes() + 8 * self._shard_len()
        )

    # -- sharded governed sweep ------------------------------------------------

    def _shard_len(
        self,
        span: int | None = None,
        parts_per_worker: int = 4,
        align: int = CHUNK,
    ) -> int:
        """Shard size: ~4 shards per worker for load balance, ``align``-ed."""
        if span is None:
            span = 1 << self.ca.n
        per = span // (self.workers * parts_per_worker) or span
        return max(align, (per // align) * align)

    def governed_sweep(
        self,
        out: np.ndarray,
        budget,
        *,
        start: int = 0,
        per_state: int = 0,
        mode: str = "step",
        node: int | None = None,
        on_prefix=None,
        kernel=None,
    ) -> tuple[int, str | None]:
        """Fill ``out[start:]`` by sharding across the supervised pool.

        Returns ``(next_lo, reason)``: ``reason`` is None when the sweep
        completed, else the budget trip reason and ``next_lo`` the end of
        the contiguous completed-and-charged prefix — the honest resume
        point.  ``on_prefix(lo, hi)`` fires in order as the prefix grows
        (the phase-space builder streams fixed-point counts through it).

        ``mode == "attractor"`` shards the whole ``2**n`` code range of
        ``kernel`` (an :class:`~repro.perf.attractor.AttractorKernel`):
        ``out`` is then the K-slot counts accumulator, each shard ships a
        counts vector instead of a successor block, and shards are folded
        in shard order as the contiguous prefix advances — so ``next_lo``
        keeps exactly the serial builders' resume semantics.
        ``mode == "mc"`` does the same over the sample range
        ``[0, kernel.sweep_total)`` of a Monte-Carlo kernel, with shards
        aligned to whole sample batches (``kernel.shard_align``).

        Raises :class:`~repro.perf.supervise.ShardFailed` only when a
        poison shard *also* fails the serial inline fallback.
        """
        # "Direct" modes (attractor, mc) reduce each shard to a fixed-size
        # counts vector instead of a successor block; the kernel supplies
        # the slot count, the merge, and (for mc) the shard alignment.
        attractor = mode == "attractor"
        direct = attractor or mode == "mc"
        align = CHUNK
        if attractor:
            from repro.perf.attractor import K_COUNTS, merge_counts

            k_slots, k_merge = K_COUNTS, merge_counts
            total = 1 << self.ca.n
        elif mode == "mc":
            k_slots, k_merge = kernel.counts_slots, kernel.merge
            align = kernel.shard_align
            total = int(kernel.sweep_total)
        else:
            total = int(out.size)
        if start >= total:
            return total, None
        # Attractor shards are pure compute with a fixed-size result, so
        # slice finer: better load balance and a fraction of the lease
        # deadline per shard even at the n=32 scale.
        shard_len = self._shard_len(
            total - start,
            parts_per_worker=16 if attractor else 4,
            align=align,
        )
        shards = [
            (lo, min(lo + shard_len, total))
            for lo in range(start, total, shard_len)
        ]
        transient = (
            self.workers * kernel.transient_bytes()
            if direct
            else self._inner.transient_bytes()
        )
        #: per-shard counts vectors not yet folded into the prefix
        shard_counts: dict[int, np.ndarray] = {}

        # Start the shared-memory resource tracker *before* forking, so the
        # workers inherit it: their attaches then register as no-op
        # duplicates with the parent's tracker instead of each worker
        # spawning a private tracker that "cleans up" blocks it never owned.
        try:  # pragma: no cover - private but stable since 3.8
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass

        ctx = mp.get_context("fork")
        result_q: mp.Queue = ctx.Queue()
        cancel = ctx.Event()
        nworkers = min(self.workers, len(shards))

        def _spawn(wid: int) -> WorkerHandle:
            task_q = ctx.SimpleQueue()
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, self._inner, task_q, result_q, cancel, kernel),
                daemon=True,
            )
            proc.start()
            return WorkerHandle(wid, proc, task_q)

        supervisor = Supervisor(
            _spawn,
            workers=nworkers,
            max_worker_deaths=self.max_worker_deaths,
            lease_timeout_s=self.shard_timeout_s,
        )
        leases = {
            sid: ShardLease(sid, lo, hi) for sid, (lo, hi) in enumerate(shards)
        }

        with obs.span(
            "perf.process.sweep",
            mode=mode,
            total=total,
            start=start,
            shards=len(shards),
            workers=nworkers,
            inner=self._inner.name,
        ) as sweep_span:
            supervisor.start()

            pending: deque[int] = deque(range(len(shards)))
            inflight: dict[int, shared_memory.SharedMemory] = {}
            status: dict[int, bool] = {}
            next_merge = 0  # first shard not yet folded into the prefix
            uncharged = 0  # admitted states not yet charged to the budget
            reason: str | None = None
            degraded = False
            winddown_at: float | None = None

            def _advance_prefix() -> None:
                nonlocal next_merge, uncharged
                while next_merge < len(shards) and status.get(next_merge):
                    lo, hi = shards[next_merge]
                    budget.charge(states=hi - lo, bytes_=per_state * (hi - lo))
                    uncharged -= hi - lo
                    if direct:
                        # Fold counts only as the charged prefix advances,
                        # so a truncated accumulator matches what a serial
                        # resume from ``next_lo`` would rebuild exactly.
                        k_merge(out, shard_counts.pop(next_merge))
                    if on_prefix is not None:
                        on_prefix(lo, hi)
                    next_merge += 1

            def _cleanup_shm(sid: int) -> None:
                shm = inflight.pop(sid, None)
                if shm is not None:
                    shm.close()
                    shm.unlink()
                    leases[sid].shm_name = None

            def _serial_shard(sid: int) -> None:
                """Compute shard ``sid`` inline with the serial inner backend.

                The last line of defence: raises :class:`ShardFailed` when
                the serial kernel fails too (with the full attempt history).
                """
                lo, hi = shards[sid]
                lease = leases[sid]
                with obs.span(
                    "perf.process.fallback", **lease.span_attrs()
                ):
                    try:
                        faults.inject("perf.process.fallback")
                        if direct:
                            shard_counts[sid] = kernel.census_range(lo, hi)
                        elif mode == "step":
                            out[lo:hi] = self._inner.step_all_range(lo, hi)
                        else:
                            out[lo:hi] = self._inner.node_successors_range(
                                node, lo, hi
                            )
                    except Exception as exc:
                        lease.fail(None, repr(exc), traceback.format_exc())
                        raise ShardFailed(
                            lo, hi, lease.attempt + 1, lease.errors
                        ) from exc
                status[sid] = True
                _cleanup_shm(sid)
                _advance_prefix()

            def _settle_admitted(sid: int) -> None:
                """Resolve an admitted shard that lost its worker post-trip.

                Memory/state trips let admitted shards *finish* (the serial
                chunk loop would have completed them), so the parent
                computes them inline — keeping the frontier identical to
                the serial backend's.  Cancellation and deadline trips
                abandon them: they sit beyond the charged prefix, so the
                frontier stays honest either way.
                """
                if status.get(sid) is not None:
                    return
                if reason.startswith(("cancelled", "deadline")):
                    status[sid] = False
                    _cleanup_shm(sid)
                else:
                    _serial_shard(sid)

            def _fail_shard(sid: int, pid: int | None, error: str, tb: str) -> None:
                """One failed attempt: re-dispatch, or quarantine as poison."""
                if status.get(sid):
                    return  # a duplicate completion already landed the data
                lease = leases[sid]
                lease.fail(pid, error, tb)
                if reason is not None:
                    _settle_admitted(sid)
                    return
                if lease.failures >= self.max_shard_retries:
                    obs.inc("perf.process.poison_shards")
                    with obs.span(
                        "perf.process.poison", **lease.span_attrs()
                    ):
                        _serial_shard(sid)
                else:
                    obs.inc("perf.process.redispatches")
                    if sid not in pending:
                        pending.appendleft(sid)

            last_supervise = 0.0

            def _supervise() -> None:
                """Reap the dead, heal their shards, respawn, or degrade."""
                nonlocal degraded, last_supervise
                now = time.monotonic()
                if now - last_supervise < _POLL_S:
                    return
                last_supervise = now
                supervisor.kill_stuck(leases)
                orphans = supervisor.reap()
                delta = supervisor.deaths - deaths_seen[0]
                if delta:
                    obs.inc("perf.process.worker_deaths", delta)
                deaths_seen[0] = supervisor.deaths
                for sid, started in orphans:
                    if status.get(sid):
                        continue
                    if started:
                        lease = leases[sid]
                        _fail_shard(
                            sid,
                            lease.pid,
                            "worker died holding the lease",
                            "",
                        )
                    elif reason is None:
                        obs.inc("perf.process.redispatches")
                        if sid not in pending:
                            pending.appendleft(sid)
                    else:
                        _settle_admitted(sid)
                if reason is not None:
                    return
                remaining = len(pending) + len(
                    [s for s in inflight if not status.get(s)]
                )
                if remaining and not supervisor.collapsed:
                    spawned = supervisor.maybe_respawn(remaining)
                    if spawned:
                        obs.inc("perf.process.respawns", spawned)
                elif supervisor.collapsed and not degraded:
                    degraded = True
                    obs.set_gauge("perf.process.degraded", 1)
                    warnings.warn(
                        f"process backend: worker death budget exhausted "
                        f"({supervisor.deaths} deaths > "
                        f"{supervisor.max_worker_deaths}); finishing the "
                        f"remaining {remaining} shard(s) serially",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    cancel.set()  # stop any survivor mid-shard promptly

            deaths_seen = [0]

            try:
                while pending or inflight:
                    _supervise()

                    if degraded and reason is None:
                        # Pool collapsed: finish the pending range serially,
                        # with the same per-shard budget projection the
                        # dispatch path applies.
                        while pending and reason is None:
                            sid = pending[0]
                            lo, hi = shards[sid]
                            if sid not in inflight:
                                reason = budget.over(
                                    pending_bytes=transient
                                    + per_state * (uncharged + hi - lo),
                                    pending_states=uncharged,
                                )
                                if reason is not None:
                                    break
                                uncharged += hi - lo
                            pending.popleft()
                            _serial_shard(sid)

                    while (
                        not degraded
                        and pending
                        and reason is None
                        and supervisor.has_capacity()
                    ):
                        sid = pending[0]
                        lo, hi = shards[sid]
                        lease = leases[sid]
                        if lease.shm_name is None:
                            # First dispatch: admit against the budget,
                            # projecting every admitted-but-uncharged shard
                            # too, so dispatch-ahead trips at the same
                            # accounted footprint the serial chunk loop
                            # would (which checks with all prior chunks
                            # already charged).  Re-dispatches reuse the
                            # original admission and buffer.
                            reason = budget.over(
                                pending_bytes=transient
                                + per_state * (uncharged + hi - lo),
                                pending_states=uncharged,
                            )
                            if reason is not None:
                                break
                            shm = shared_memory.SharedMemory(
                                create=True,
                                size=k_slots * 8 if direct else (hi - lo) * 8,
                            )
                            inflight[sid] = shm
                            lease.shm_name = shm.name
                            uncharged += hi - lo
                        if not supervisor.assign(
                            lease, (sid, mode, node, lo, hi, lease.shm_name)
                        ):  # pragma: no cover - capacity raced a death
                            break
                        pending.popleft()

                    if reason is not None:
                        # Memory/state trips only stop *dispatch* — shards
                        # already in flight were admitted by the projection
                        # and are allowed to finish (the serial loop would
                        # have completed those chunks too).  Cancellation
                        # and deadline trips interrupt the workers.
                        if reason.startswith(("cancelled", "deadline")):
                            cancel.set()
                            if winddown_at is None:
                                winddown_at = time.monotonic()
                        pending.clear()
                        owned = set(supervisor.outstanding())
                        for sid in list(inflight):
                            if sid not in owned and status.get(sid) is None:
                                # Admitted but no live holder: nothing else
                                # will ever complete it — settle it now.
                                _settle_admitted(sid)
                        if not inflight:
                            break
                        if (
                            winddown_at is not None
                            and time.monotonic() - winddown_at
                            > _WINDDOWN_GRACE_S
                        ):
                            # Hung workers never acknowledge the cancel:
                            # abandon their shards (beyond the charged
                            # prefix) so the trip returns promptly.
                            break

                    try:
                        msg = result_q.get(timeout=_POLL_S)
                    except queue.Empty:
                        # Zero-state ping so an attached progress reporter
                        # keeps emitting heartbeats while shards run
                        # elsewhere and nothing is being charged here.
                        cb = getattr(budget, "on_charge", None)
                        if cb is not None:
                            cb(budget, 0)
                        if reason is None:
                            reason = budget.over()
                        continue

                    kind = msg[0]
                    if kind == "start":
                        _, sid, pid = msg
                        supervisor.note_started(leases[sid], pid)
                    elif kind == "done":
                        _, sid, pid, ok, snapshot = msg
                        obs.REGISTRY.merge_snapshot(snapshot)
                        supervisor.release(sid)
                        if status.get(sid):
                            continue  # duplicate completion after a re-dispatch
                        if sid in pending:
                            # A presumed-dead worker finished after all:
                            # accept the data (it is byte-identical by
                            # construction) instead of recomputing.
                            pending.remove(sid)
                        shm = inflight.get(sid)
                        if shm is None:
                            continue  # already cleaned up past a trip
                        lo, hi = shards[sid]
                        if ok:
                            # Merge even past a trip: the data is correct,
                            # and a memmap-backed resume benefits from it;
                            # only prefix shards are *charged* and counted
                            # in the frontier.
                            if direct:
                                # Copy before the shm segment is unlinked.
                                shard_counts[sid] = np.array(
                                    np.ndarray(k_slots, dtype=np.int64, buffer=shm.buf)
                                )
                            else:
                                out[lo:hi] = np.ndarray(
                                    hi - lo, dtype=np.int64, buffer=shm.buf
                                )
                            status[sid] = True
                            _cleanup_shm(sid)
                            _advance_prefix()
                        elif reason is None:
                            # The worker stopped at the cooperative cancel
                            # poll (pool-collapse wind-down): the shard is
                            # still owed — hand it back for completion.
                            if sid not in pending:
                                pending.append(sid)
                        else:
                            status[sid] = False
                            _cleanup_shm(sid)
                    elif kind == "error":
                        _, sid, pid, exc_repr, tb, snapshot = msg
                        obs.REGISTRY.merge_snapshot(snapshot)
                        supervisor.release(sid)
                        obs.inc("perf.process.shard_errors")
                        _fail_shard(sid, pid, exc_repr, tb)
                    elif kind == "metrics":
                        obs.REGISTRY.merge_snapshot(msg[2])
            finally:
                if reason is not None:
                    cancel.set()
                # Dead workers took their unflushed in-flight increments
                # with them; anything still alive after the shutdown grace
                # is killed and loses its final flush the same way.
                stuck = [
                    h
                    for h in supervisor.handles
                    if h.is_alive() and supervisor.load(h) > 0
                ]
                supervisor.shutdown(grace_s=_SHUTDOWN_GRACE_S)
                lost = supervisor.deaths + sum(
                    1 for h in stuck if h.process.exitcode != 0
                )
                if lost:
                    obs.inc("perf.process.snapshots_lost", lost)
                # Fold the final (and any straggler) snapshots in.
                while True:
                    try:
                        msg = result_q.get_nowait()
                    except queue.Empty:
                        break
                    if msg[0] == "metrics":
                        obs.REGISTRY.merge_snapshot(msg[2])
                    elif msg[0] == "done":
                        obs.REGISTRY.merge_snapshot(msg[4])
                    elif msg[0] == "error":
                        obs.REGISTRY.merge_snapshot(msg[5])
                for shm in inflight.values():
                    shm.close()
                    shm.unlink()
            next_lo = shards[next_merge][0] if next_merge < len(shards) else total
            sweep_span.set(
                next_lo=next_lo,
                truncated=reason,
                worker_deaths=supervisor.deaths,
                respawns=supervisor.respawns,
                degraded=degraded,
            )
            obs.inc("perf.process.sweeps")
            obs.inc("perf.process.shards_done", next_merge)
            return next_lo, reason
