"""Sweep-backend protocol and the generic ``numpy`` reference backend.

A *sweep backend* computes whole-phase-space maps — the packed parallel
successor of every configuration in a range, or the packed single-node
(sequential) successors — for one bound automaton.  The engine
(:class:`repro.core.automaton.CellularAutomaton`) delegates its chunked
``step_all_range`` / ``node_successors`` hot paths to its backend, so the
governed builders in :mod:`repro.core.phase_space` and
:mod:`repro.core.nondet` are backend-agnostic: budgets, frontiers and
resume semantics are identical whichever kernel does the arithmetic.

Backends are duck-typed against the automaton: they read ``ca.n``,
``ca._windows`` / ``ca._lengths`` (the padded window matrix, sentinel
``ca.n`` = quiescent 0), ``ca.rule_at(i)`` and ``ca._rule_groups()`` —
which both the homogeneous and the heterogeneous engines provide.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CHUNK",
    "MAX_SWEEP_N",
    "MAX_ATTRACTOR_N",
    "BackendUnsupported",
    "SweepBackend",
    "NumpyBackend",
]

#: configurations processed per chunk in whole-space sweeps (2**16 keeps the
#: intermediate scratch of every backend in the tens of megabytes at most)
CHUNK = 1 << 16

#: hard ceiling on exact *materialized* whole-space sweeps: 2**28
#: successor entries are 2 GB of int64, the most a governed single-host
#: build can usefully hold (disk-backed frontiers included).  Above this,
#: go attractor-direct — or sample.
MAX_SWEEP_N = 28

#: hard ceiling on exact *attractor-direct* sweeps
#: (:mod:`repro.perf.attractor`).  No per-configuration array is ever
#: held — the census streams orbit representatives through bounded lane
#: batches — so this ceiling is set by scan time, not memory.
MAX_ATTRACTOR_N = 34


class BackendUnsupported(ValueError):
    """An explicitly requested backend cannot run the given automaton.

    The ``auto`` policy never raises this — it falls through to the next
    applicable backend; only a direct ``backend=...`` request surfaces it
    (the CLI renders it as a one-line error instead of a traceback).
    """


class SweepBackend:
    """One compiled sweep strategy bound to one automaton.

    Subclasses implement the three range kernels; ``supports`` is a
    classmethod returning ``None`` when the backend can handle the
    automaton and a human-readable reason when it cannot (the ``auto``
    policy falls through to the next backend on a reason).
    """

    name = "?"
    #: True for backends that split sweeps across worker processes; the
    #: governed builders hand those the whole range at once instead of
    #: driving the chunk loop themselves.  Sharded backends own their
    #: workers' failure semantics: a worker death must never corrupt the
    #: governed prefix — the backend either heals (re-dispatching the
    #: lost shards, possibly serially) or raises a typed error
    #: (``repro.perf.supervise.ShardFailed``); it never hangs and never
    #: returns a range it did not fully compute.
    is_sharded = False

    def __init__(self, ca):
        self.ca = ca

    @classmethod
    def supports(cls, ca) -> str | None:
        """``None`` if this backend can run ``ca``, else the reason not."""
        return None

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.ca.describe()})"

    # -- range kernels ---------------------------------------------------------

    def step_all_range(self, lo: int, hi: int) -> np.ndarray:
        """Packed synchronous successors of configurations ``lo .. hi-1``."""
        raise NotImplementedError

    def node_successors_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        """Packed successors under updating only node ``i``, for the range."""
        raise NotImplementedError

    def sweep_all_nodes_range(self, lo: int, hi: int, out: np.ndarray) -> None:
        """Fill ``out[(n, hi-lo)]`` with every node's successor row at once.

        Backends override this to share the per-chunk setup (config
        unpacking, input planes) across all ``n`` rows — one pass over the
        range instead of ``n``.
        """
        for i in range(self.ca.n):
            out[i] = self.node_successors_range(i, lo, hi)

    def transient_bytes(self) -> int:
        """Peak per-chunk scratch bytes (for deterministic budget charging)."""
        raise NotImplementedError


class NumpyBackend(SweepBackend):
    """The generic window-gather backend: works for every space and rule.

    One bounded chunk = unpack the codes to uint8 bit vectors, gather each
    node's window through the padded window matrix, apply the vectorized
    rule.  This is the reference implementation the compiled backends are
    property-tested against (and the fallback when they do not apply).
    """

    name = "numpy"

    def _ext(self, lo: int, hi: int) -> np.ndarray:
        """Bit-unpacked configs with the trailing quiescent slot appended."""
        configs = self.ca._config_chunk(lo, hi)
        return np.concatenate(
            [configs, np.zeros((hi - lo, 1), dtype=np.uint8)], axis=1
        )

    def step_all_range(self, lo: int, hi: int) -> np.ndarray:
        ca = self.ca
        ext = self._ext(lo, hi)
        out = np.zeros(hi - lo, dtype=np.int64)
        for rule, nodes in ca._rule_groups():
            inputs = ext[:, ca._windows[nodes]]
            bits = rule.apply_windows(inputs, ca._lengths[nodes]).astype(np.int64)
            out |= bits @ (np.int64(1) << nodes.astype(np.int64))
        return out

    def _node_bits(self, ext: np.ndarray, i: int) -> np.ndarray:
        """New-state bit of node ``i`` for every config in the chunk."""
        ca = self.ca
        # Slice off rectangular padding: beyond the node's true window
        # length every entry is the quiescent slot, which fixed-arity
        # rules must not see as an extra input.
        window = ca._windows[i][: ca._lengths[i]]
        inputs = ext[:, window]
        return ca.rule_at(i).apply_windows(
            inputs, ca._lengths[i : i + 1]
        ).astype(np.int64)

    def node_successors_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        codes = np.arange(lo, hi, dtype=np.int64)
        new_bits = self._node_bits(self._ext(lo, hi), i)
        old_bits = (codes >> i) & 1
        return codes ^ ((old_bits ^ new_bits) << i)

    def sweep_all_nodes_range(self, lo: int, hi: int, out: np.ndarray) -> None:
        # The whole point: unpack the chunk once, then fill all n rows.
        codes = np.arange(lo, hi, dtype=np.int64)
        ext = self._ext(lo, hi)
        for i in range(self.ca.n):
            new_bits = self._node_bits(ext, i)
            old_bits = (codes >> i) & 1
            out[i] = codes ^ ((old_bits ^ new_bits) << i)

    def transient_bytes(self) -> int:
        n = self.ca.n
        k_max = self.ca._windows.shape[1]
        # configs + ext + gathered inputs (uint8 each), new (uint8),
        # packed output (int64)
        return CHUNK * ((n + 1) + n * k_max + n + 8)
