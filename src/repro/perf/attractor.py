"""Attractor-direct SWAR cycle kernel: 64 trajectories per machine word.

The materialized pipeline stores the full ``2**n`` successor array and
peels it (:mod:`repro.analysis.cycles`), which caps exact sweeps at
``MAX_SWEEP_N``.  This kernel never stores the global map: it packs 64
*trajectories* into each ``uint64`` word — plane ``j``, word ``w``, bit
``t`` holds bit ``j`` of trajectory lane ``64*w + t`` — and advances all
lanes through the same lowered bitwise kernels the sweep backend compiles
(:func:`repro.perf.bitplane.eval_bit_kernel`).  Brent's cycle-finding
runs per lane with vectorized counters: lanes that meet their hare are
retired via bitmask blending, and words with no live lane are compacted
out of the working set, so converged trajectories stop costing work.

Fed only symmetry-orbit representatives
(:class:`repro.analysis.quotient.QuotientSpec`) with orbit-size weights,
the per-lane ``(cycle length, on-cycle)`` classification folds into an
exact whole-space census — fixed points, two-cycles, cycle configurations
— in O(transient + cycle) steps per orbit and O(lane batch) memory.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.perf.base import MAX_ATTRACTOR_N, BackendUnsupported
from repro.perf.bitplane import eval_bit_kernel, lower_bit_kernel

__all__ = [
    "AttractorKernel",
    "MAX_ATTRACTOR_N",
    "ATTRACTOR_CHUNK",
    "K_COUNTS",
    "COUNT_FIELDS",
    "merge_counts",
    "zero_counts",
]

#: trajectory lanes advanced per Brent batch (memory: ~6 plane sets of
#: n * LANES/64 words each — a few MB at n=32, far under any budget)
LANES = 1 << 18

#: code-range chunk of attractor census loops (serial governed chunks and
#: worker cancel-poll granularity).  Wide enough that representative
#: batches fill whole lane blocks — at 2**22 codes a dihedral quotient
#: yields ~2**22/2n representatives per chunk — instead of the sweeps'
#: much finer CHUNK, whose per-call overhead would dominate Brent batches.
ATTRACTOR_CHUNK = 1 << 22

#: representative-enumeration sub-range (bounds the arange + filter scratch)
ENUM_CHUNK = 1 << 20

#: slots of the census counts vector (all int64; "max_cycle_len" merges by
#: max, everything else by sum — see :func:`merge_counts`)
COUNT_FIELDS = (
    "codes_scanned",
    "orbit_reps",
    "configs_covered",
    "fixed_points",
    "cycle_configs",
    "two_cycle_configs",
    "max_cycle_len",
    "reserved",
)
K_COUNTS = len(COUNT_FIELDS)
_IDX = {name: i for i, name in enumerate(COUNT_FIELDS)}
_MAX_IDX = _IDX["max_cycle_len"]

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def zero_counts() -> np.ndarray:
    """A fresh all-zero census counts vector."""
    return np.zeros(K_COUNTS, dtype=np.int64)


def merge_counts(acc: np.ndarray, delta: np.ndarray) -> np.ndarray:
    """Fold ``delta`` into ``acc`` in place (sum slots, max-merge the max)."""
    acc[:_MAX_IDX] += delta[:_MAX_IDX]
    acc[_MAX_IDX] = max(acc[_MAX_IDX], delta[_MAX_IDX])
    acc[_MAX_IDX + 1 :] += delta[_MAX_IDX + 1 :]
    return acc


def _pack_lane_mask(mask: np.ndarray) -> np.ndarray:
    """Per-lane booleans (length a multiple of 64) to ``uint64`` words."""
    return np.packbits(mask.astype(np.uint8), bitorder="little").view(np.uint64)


def _unpack_lane_mask(words: np.ndarray) -> np.ndarray:
    """``uint64`` words back to per-lane booleans."""
    return np.unpackbits(words.view(np.uint8), bitorder="little").astype(bool)


class AttractorKernel:
    """Brent cycle classification over bit-packed trajectory lanes.

    Bound to one automaton (whose per-node rules must lower to bitwise
    kernels) and one :class:`~repro.analysis.quotient.QuotientSpec`.  The
    public census entry point is :meth:`census_range`; :meth:`classify`
    exposes the raw per-lane ``(cycle length, on-cycle)`` classification
    for tests and exploratory use.
    """

    def __init__(self, ca, quotient=None, lanes: int = LANES):
        reason = self.supports(ca)
        if reason is not None:
            raise BackendUnsupported(
                f"attractor kernel cannot run {ca.describe()}: {reason}"
            )
        if quotient is None:
            from repro.analysis.quotient import QuotientSpec

            quotient = QuotientSpec.for_automaton(ca)
        if quotient.n != ca.n:
            raise ValueError(
                f"quotient is for n={quotient.n}, automaton has n={ca.n}"
            )
        self.ca = ca
        self.n = ca.n
        self.quotient = quotient
        self.lanes = max(64, lanes)
        kernels: dict[tuple[int, int], tuple] = {}
        self._kernels: list[tuple] = []
        self._windows: list[np.ndarray] = []
        for i in range(ca.n):
            rule = ca.rule_at(i)
            width = int(ca._lengths[i])
            key = (id(rule), width)
            if key not in kernels:
                kernels[key] = lower_bit_kernel(rule, width)
            self._kernels.append(kernels[key])
            self._windows.append(
                np.asarray(ca._windows[i][:width], dtype=np.int64)
            )

    @classmethod
    def supports(cls, ca) -> str | None:
        """``None`` when the kernel can run ``ca``, else the reason not.

        Unlike the consecutive-code sweep backend there is no ``n >= 6``
        floor — lanes hold arbitrary codes — so the qa differential
        harness can cross-check the kernel on the smallest instances.
        """
        if sys.byteorder != "little":  # pragma: no cover - exotic hosts
            return "trajectory-plane packing assumes a little-endian host"
        if ca.n > MAX_ATTRACTOR_N:
            return f"n={ca.n} exceeds the attractor-direct ceiling {MAX_ATTRACTOR_N}"
        seen: set[tuple[int, int]] = set()
        for i in range(ca.n):
            rule = ca.rule_at(i)
            width = int(ca._lengths[i])
            key = (id(rule), width)
            if key in seen:
                continue
            seen.add(key)
            if lower_bit_kernel(rule, width) is None:
                return (
                    f"node {i}: rule {rule.name} has no bitwise lowering "
                    f"at window width {width}"
                )
        return None

    def describe(self) -> str:
        return f"attractor[{self.quotient.describe()}]"

    # -- trajectory planes -----------------------------------------------------

    def _make_planes(self, codes: np.ndarray) -> list[np.ndarray]:
        """Pack lane codes (length a multiple of 64) into ``n`` bit planes."""
        planes = []
        for j in range(self.n):
            bits = ((codes >> np.uint64(j)) & np.uint64(1)).astype(np.uint8)
            planes.append(
                np.packbits(bits, bitorder="little").view(np.uint64)
            )
        return planes

    def _step(self, planes: list[np.ndarray]) -> list[np.ndarray]:
        """One synchronous global step of every lane."""
        nwords = planes[0].size
        zero = np.zeros(nwords, dtype=np.uint64)
        out = []
        for i in range(self.n):
            inputs = [
                planes[src] if src < self.n else zero
                for src in self._windows[i].tolist()
            ]
            out.append(eval_bit_kernel(self._kernels[i], inputs, nwords))
        return out

    @staticmethod
    def _neq_words(a: list[np.ndarray], b: list[np.ndarray]) -> np.ndarray:
        """Word mask with lane bit set iff the lane's states differ."""
        neq = a[0] ^ b[0]
        for pa, pb in zip(a[1:], b[1:]):
            neq = neq | (pa ^ pb)
        return neq

    @staticmethod
    def _blend(
        dst: list[np.ndarray], src: list[np.ndarray], mask: np.ndarray
    ) -> None:
        """``dst = src`` on masked lanes, unchanged elsewhere (in place)."""
        inv = ~mask
        for j in range(len(dst)):
            dst[j] = (src[j] & mask) | (dst[j] & inv)

    # -- Brent cycle classification --------------------------------------------

    def classify(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane ``(cycle length, on-cycle)`` for a batch of codes.

        ``lam[t]`` is the length of the unique cycle the trajectory of
        ``codes[t]`` falls into; ``on_cycle[t]`` is whether ``codes[t]``
        itself lies on that cycle (``f**lam`` fixes it).  Everything a
        symmetry-weighted attractor census needs, with no successor array.
        """
        m = int(codes.size)
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.astype(bool)
        m64 = (m + 63) & ~63
        padded = np.empty(m64, dtype=np.uint64)
        padded[:m] = codes.astype(np.uint64, copy=False)
        padded[m:] = padded[m - 1]  # pad lanes repeat a real code
        x0 = self._make_planes(padded)
        lam_out = self._brent_lambda(x0)
        on_cycle = self._on_cycle(x0, lam_out)
        return lam_out[:m], on_cycle[:m]

    def _brent_lambda(self, x0: list[np.ndarray]) -> np.ndarray:
        """Vectorized Brent phase A: per-lane cycle length ``lam``."""
        m64 = x0[0].size << 6
        tort = [p.copy() for p in x0]
        hare = self._step(x0)
        lane_idx = np.arange(m64, dtype=np.int64)
        power = np.ones(m64, dtype=np.int64)
        lam = np.ones(m64, dtype=np.int64)
        active = np.ones(m64, dtype=bool)
        lam_out = np.zeros(m64, dtype=np.int64)
        while True:
            eq = ~_unpack_lane_mask(self._neq_words(tort, hare))
            done = active & eq
            if done.any():
                lam_out[lane_idx[done]] = lam[done]
                active &= ~done
                # Early exit: drop words with no live lane so converged
                # trajectories stop paying for the step kernel.
                word_live = active.reshape(-1, 64).any(axis=1)
                if not word_live.all():
                    keep = np.flatnonzero(word_live)
                    if keep.size == 0:
                        return lam_out
                    sel = (
                        keep[:, None] * 64 + np.arange(64, dtype=np.int64)
                    ).ravel()
                    tort = [p[keep] for p in tort]
                    hare = [p[keep] for p in hare]
                    lane_idx = lane_idx[sel]
                    power = power[sel]
                    lam = lam[sel]
                    active = active[sel]
            teleport = active & (power == lam)
            if teleport.any():
                mask = _pack_lane_mask(teleport)
                self._blend(tort, hare, mask)
                power[teleport] <<= 1
                lam[teleport] = 0
            hare = self._step(hare)
            lam += active

    def _on_cycle(
        self, x0: list[np.ndarray], lam: np.ndarray
    ) -> np.ndarray:
        """Which lanes sit on their own cycle: does ``f**lam`` fix them?"""
        final = [p.copy() for p in x0]
        cur = [p.copy() for p in x0]
        rem = lam.copy()
        word_idx = np.arange(x0[0].size, dtype=np.int64)
        while True:
            active = rem > 0
            word_live = active.reshape(-1, 64).any(axis=1)
            if not word_live.all():
                keep = np.flatnonzero(word_live)
                drop = np.flatnonzero(~word_live)
                # Scatter finished words back before compacting them away.
                for j in range(self.n):
                    final[j][word_idx[drop]] = cur[j][drop]
                    cur[j] = cur[j][keep]
                word_idx = word_idx[keep]
                rem = rem.reshape(-1, 64)[keep].ravel()
                if word_idx.size == 0:
                    break
                active = rem > 0
            stepped = self._step(cur)
            self._blend(cur, stepped, _pack_lane_mask(active))
            rem -= active
        return ~_unpack_lane_mask(self._neq_words(final, x0))

    # -- census ----------------------------------------------------------------

    def census_range(self, lo: int, hi: int) -> np.ndarray:
        """Weighted attractor counts over configuration codes ``lo..hi-1``.

        Enumerates the quotient's orbit representatives in the range,
        classifies them in lane batches, and folds orbit-weighted results
        into a :data:`COUNT_FIELDS` vector.  Disjoint ranges merge with
        :func:`merge_counts`, which is what both the serial governed loop
        and the sharded process backend rely on.
        """
        counts = zero_counts()
        counts[_IDX["codes_scanned"]] = hi - lo
        for qlo in range(lo, hi, ENUM_CHUNK):
            qhi = min(qlo + ENUM_CHUNK, hi)
            reps, weights = self.quotient.reps_in_range(qlo, qhi)
            counts[_IDX["orbit_reps"]] += reps.size
            counts[_IDX["configs_covered"]] += int(weights.sum())
            for b in range(0, reps.size, self.lanes):
                lam, on_cycle = self.classify(reps[b : b + self.lanes])
                w = weights[b : b + self.lanes]
                counts[_IDX["fixed_points"]] += int(
                    w[on_cycle & (lam == 1)].sum()
                )
                counts[_IDX["cycle_configs"]] += int(
                    w[on_cycle & (lam >= 2)].sum()
                )
                counts[_IDX["two_cycle_configs"]] += int(
                    w[on_cycle & (lam == 2)].sum()
                )
                if lam.size:
                    counts[_MAX_IDX] = max(
                        counts[_MAX_IDX], int(lam.max())
                    )
        return counts

    def transient_bytes(self) -> int:
        """Peak per-batch scratch bytes (deterministic budget charging).

        Six plane sets (x0, tortoise, hare, final, current, one step
        output) of ``n`` planes over ``lanes/64`` words, Brent's per-lane
        int64 counters, plus the representative-enumeration scratch.
        """
        plane_words = self.lanes >> 6
        planes = 6 * self.n * plane_words * 8
        per_lane = 4 * self.lanes * 8
        enum = 3 * ENUM_CHUNK * 8
        return planes + per_lane + enum
