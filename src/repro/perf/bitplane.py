"""Bit-plane (SWAR) sweep backend: 64 configurations per machine word.

A chunk of consecutive configuration codes ``lo .. hi-1`` is represented
as ``n`` *bit planes*: plane ``j`` is a ``uint64`` array whose word ``w``,
bit ``t``, holds bit ``j`` of configuration ``lo + 64*w + t``.  Because
the codes are consecutive, every input plane is free to generate — plane
``j < 6`` is a constant repeating pattern and plane ``j >= 6`` is
constant within each word — so the sweep never unpacks configurations at
all.  Each node's rule is lowered to a pure bitwise kernel
(:func:`lower_bit_kernel`):

* ``parity`` — XOR of the input planes (the paper's XOR rule);
* ``profile`` — a carry-save adder sums the input planes into binary
  count planes, then the totalistic count profile (MAJORITY, simple
  threshold, any :class:`~repro.core.rules.SymmetricRule`) is an OR of
  count minterms — 64 configurations per bitwise op;
* ``table`` — small fixed-arity truth tables (elementary/Wolfram rules)
  as a sum-of-products over the input planes.

Throughput is an order of magnitude over the gather path for exactly the
rules the paper studies; rules with no lowering are rejected by
``supports`` and the ``auto`` policy falls back to the table backend.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.perf.base import CHUNK, BackendUnsupported, SweepBackend

__all__ = [
    "BitplaneBackend",
    "lower_bit_kernel",
    "eval_bit_kernel",
    "MAX_SOP_WIDTH",
]

#: widest window lowered as a raw truth-table sum-of-products (2**6 = 64
#: minterms; beyond that the kernel would be slower than the LUT gather)
MAX_SOP_WIDTH = 6

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: word patterns of bit-plane j < 6 for consecutive codes: bit t of the
#: word is ``(t >> j) & 1``.
_LOW_PATTERNS = (
    np.uint64(0xAAAAAAAAAAAAAAAA),
    np.uint64(0xCCCCCCCCCCCCCCCC),
    np.uint64(0xF0F0F0F0F0F0F0F0),
    np.uint64(0xFF00FF00FF00FF00),
    np.uint64(0xFFFF0000FFFF0000),
    np.uint64(0xFFFFFFFF00000000),
)


def lower_bit_kernel(rule, width: int):
    """Lower ``rule`` at ``width`` to a bitwise kernel spec, or ``None``.

    Returns ``("parity", None)``, ``("profile", profile)`` or
    ``("table", lut)``; ``None`` when the rule has no bitwise lowering at
    this width (non-totalistic and wider than :data:`MAX_SOP_WIDTH`).
    """
    profile = rule.count_profile(width)
    if profile is not None:
        profile = np.asarray(profile, dtype=np.uint8)
        if np.array_equal(profile, np.arange(width + 1) % 2):
            return ("parity", None)
        return ("profile", profile)
    if width <= MAX_SOP_WIDTH:
        try:
            return ("table", np.asarray(rule.lut(width), dtype=np.uint8))
        except ValueError:
            return None
    return None


def _minterm_or(
    selected: np.ndarray,
    planes: list[np.ndarray],
    nwords: int,
    nbits: int,
) -> np.ndarray:
    """OR of the minterms ``selected`` over ``nbits`` of ``planes``."""
    out = np.zeros(nwords, dtype=np.uint64)
    for code in selected.tolist():
        term = np.full(nwords, _ONES, dtype=np.uint64)
        for b in range(nbits):
            term &= planes[b] if (code >> b) & 1 else ~planes[b]
        out |= term
    return out


def eval_bit_kernel(
    kernel: tuple, inputs: list[np.ndarray], nwords: int
) -> np.ndarray:
    """Evaluate a lowered bitwise kernel over arbitrary input planes.

    ``inputs`` need not come from consecutive-code generation — the
    attractor kernel feeds *trajectory* planes through the very same
    lowering the sweep backend compiled, so both paths share one
    arithmetic implementation.
    """
    kind, data = kernel
    if kind == "parity":
        out = np.zeros(nwords, dtype=np.uint64)
        for plane in inputs:
            out ^= plane
        return out
    if kind == "profile":
        sums = _popcount_planes(inputs, nwords)
        ones = np.flatnonzero(data)
        # Evaluate whichever side of the profile has fewer minterms.
        if ones.size * 2 > data.size:
            zeros = np.flatnonzero(data == 0)
            return ~_minterm_or(zeros, sums, nwords, len(sums))
        return _minterm_or(ones, sums, nwords, len(sums))
    # kind == "table": sum-of-products over the raw input planes.
    ones = np.flatnonzero(data)
    if ones.size * 2 > data.size:
        zeros = np.flatnonzero(data == 0)
        return ~_minterm_or(zeros, inputs, nwords, len(inputs))
    return _minterm_or(ones, inputs, nwords, len(inputs))


def _popcount_planes(planes: list[np.ndarray], nwords: int) -> list[np.ndarray]:
    """Binary count planes (little-endian) of per-bit sums of ``planes``.

    A ripple-carry counter: adding each input plane to the running binary
    counter costs two bitwise ops per existing count plane, so the whole
    sum is ``O(k log k)`` word operations for ``k`` inputs.
    """
    sums: list[np.ndarray] = []
    for plane in planes:
        carry = plane.copy()
        for s in range(len(sums)):
            sums[s], carry = sums[s] ^ carry, sums[s] & carry
        if len(sums) < max(1, len(planes)).bit_length():
            sums.append(carry)
    if not sums:
        sums.append(np.zeros(nwords, dtype=np.uint64))
    return sums


class BitplaneBackend(SweepBackend):
    """SWAR kernels over 64-configuration words."""

    name = "bitplane"

    @classmethod
    def supports(cls, ca) -> str | None:
        if sys.byteorder != "little":  # pragma: no cover - exotic hosts
            return "bit-plane packing assumes a little-endian host"
        if ca.n < 6:
            return f"needs n >= 6 for whole 64-configuration words, got {ca.n}"
        seen: set[tuple[int, int]] = set()
        for i in range(ca.n):
            rule = ca.rule_at(i)
            width = int(ca._lengths[i])
            key = (id(rule), width)
            if key in seen:
                continue
            seen.add(key)
            if lower_bit_kernel(rule, width) is None:
                return (
                    f"node {i}: rule {rule.name} has no bitwise lowering "
                    f"at window width {width}"
                )
        return None

    def __init__(self, ca):
        super().__init__(ca)
        reason = self.supports(ca)
        if reason is not None:
            raise BackendUnsupported(
                f"bitplane backend cannot run {ca.describe()}: {reason}"
            )
        kernels: dict[tuple[int, int], tuple] = {}
        self._kernels: list[tuple] = []
        self._windows: list[np.ndarray] = []
        for i in range(ca.n):
            rule = ca.rule_at(i)
            width = int(ca._lengths[i])
            key = (id(rule), width)
            if key not in kernels:
                kernels[key] = lower_bit_kernel(rule, width)
            self._kernels.append(kernels[key])
            self._windows.append(
                np.asarray(ca._windows[i][:width], dtype=np.int64)
            )

    # -- plane generation ------------------------------------------------------

    def _plane(
        self, j: int, lo: int, nwords: int, cache: dict[int, np.ndarray]
    ) -> np.ndarray:
        """Input plane of configuration bit ``j`` for an aligned chunk."""
        plane = cache.get(j)
        if plane is not None:
            return plane
        if j == self.ca.n:  # quiescent sentinel slot: always 0
            plane = np.zeros(nwords, dtype=np.uint64)
        elif j < 6:
            plane = np.full(nwords, _LOW_PATTERNS[j], dtype=np.uint64)
        else:
            words = (lo >> 6) + np.arange(nwords, dtype=np.int64)
            plane = np.where(
                (words >> (j - 6)) & 1 == 1, _ONES, np.uint64(0)
            )
        cache[j] = plane
        return plane

    # -- kernels ---------------------------------------------------------------

    def _out_plane(
        self, i: int, lo: int, nwords: int, cache: dict[int, np.ndarray]
    ) -> np.ndarray:
        inputs = [
            self._plane(int(src), lo, nwords, cache) for src in self._windows[i]
        ]
        return eval_bit_kernel(self._kernels[i], inputs, nwords)

    # -- packing ---------------------------------------------------------------

    @staticmethod
    def _unpack(plane: np.ndarray) -> np.ndarray:
        """Plane words back to one uint8 bit per configuration."""
        return np.unpackbits(plane.view(np.uint8), bitorder="little")

    @staticmethod
    def _aligned(lo: int, hi: int) -> tuple[int, int]:
        return lo & ~63, (hi + 63) & ~63

    def step_all_range(self, lo: int, hi: int) -> np.ndarray:
        lo0, hi0 = self._aligned(lo, hi)
        nwords = (hi0 - lo0) >> 6
        cache: dict[int, np.ndarray] = {}
        out = np.zeros(hi0 - lo0, dtype=np.int64)
        for i in range(self.ca.n):
            plane = self._out_plane(i, lo0, nwords, cache)
            out |= self._unpack(plane).astype(np.int64) << i
        return out[lo - lo0 : (hi - lo0)]

    def node_successors_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        lo0, hi0 = self._aligned(lo, hi)
        nwords = (hi0 - lo0) >> 6
        cache: dict[int, np.ndarray] = {}
        new_plane = self._out_plane(i, lo0, nwords, cache)
        # Only the flipped bit matters: XOR against the node's own plane.
        diff = new_plane ^ self._plane(i, lo0, nwords, cache)
        codes = np.arange(lo0, hi0, dtype=np.int64)
        succ = codes ^ (self._unpack(diff).astype(np.int64) << i)
        return succ[lo - lo0 : (hi - lo0)]

    def sweep_all_nodes_range(self, lo: int, hi: int, out: np.ndarray) -> None:
        lo0, hi0 = self._aligned(lo, hi)
        nwords = (hi0 - lo0) >> 6
        cache: dict[int, np.ndarray] = {}
        codes = np.arange(lo0, hi0, dtype=np.int64)
        for i in range(self.ca.n):
            diff = self._out_plane(i, lo0, nwords, cache) ^ self._plane(
                i, lo0, nwords, cache
            )
            succ = codes ^ (self._unpack(diff).astype(np.int64) << i)
            out[i] = succ[lo - lo0 : (hi - lo0)]

    def transient_bytes(self) -> int:
        n = self.ca.n
        # input-plane cache (<= n+1 planes at chunk/8 bytes), adder/minterm
        # scratch, the packed int64 output and the per-node unpack temps
        return CHUNK * ((n + 1) // 8 + 4 + 8 + 10)
