"""Worker supervision for the sharded ``process`` backend.

The paper's order-independence results (Macauley–McCammond; PAPERS.md)
license a strong operational guarantee: shards of a whole-space sweep
may be recomputed and merged in *any* order by *any* worker and the
result is byte-identical.  Worker failure therefore must never change an
answer — only its latency.  This module holds the mechanism that turns
that license into behaviour:

* every dispatched shard carries a :class:`ShardLease` — which worker
  holds it (pid), how many times it has been attempted, which workers
  already failed it, and a deadline after which the holder is presumed
  stuck;
* a :class:`Supervisor` owns the worker pool: it assigns leases to the
  least-loaded live worker (avoiding workers that already failed the
  shard), watches liveness via ``Process.is_alive()``/``exitcode``,
  reaps dead workers, SIGKILLs past-deadline holders, and respawns
  replacements up to a configurable *death budget*;
* a shard that keeps failing is classified **poison** and quarantined:
  the parent recomputes it inline with the serial inner backend, and if
  that also raises, surfaces a typed :class:`ShardFailed` — never a
  hang, never a bare ``RuntimeError``.

The dispatch policy (budgets, prefix charging, merging) stays in
:mod:`repro.perf.process`; this module is pure pool mechanics so later
scale-out layers (streaming Monte-Carlo, atlas fill) can reuse it.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_MAX_SHARD_RETRIES",
    "DEFAULT_SHARD_TIMEOUT_S",
    "MAX_SHARD_RETRIES_ENV",
    "MAX_WORKER_DEATHS_ENV",
    "SHARD_TIMEOUT_ENV",
    "ShardFailed",
    "ShardLease",
    "WorkerHandle",
    "Supervisor",
    "default_max_shard_retries",
    "default_max_worker_deaths",
    "default_shard_timeout_s",
]

#: a shard that fails this many attempts (across distinct workers when
#: possible) is classified poison and recomputed inline by the parent
DEFAULT_MAX_SHARD_RETRIES = 2

#: seconds a worker may hold one shard lease before the parent presumes
#: it stuck and SIGKILLs it (the shard is then re-dispatched)
DEFAULT_SHARD_TIMEOUT_S = 300.0

MAX_SHARD_RETRIES_ENV = "REPRO_MAX_SHARD_RETRIES"
MAX_WORKER_DEATHS_ENV = "REPRO_MAX_WORKER_DEATHS"
SHARD_TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT_S"


def _env_positive_int(var: str, fallback: int) -> int:
    raw = os.environ.get(var, "").strip()
    if not raw:
        return fallback
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{var} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{var} must be >= 1, got {value}")
    return value


def default_max_shard_retries() -> int:
    """Failed attempts before a shard is poison: env var, else 2."""
    return _env_positive_int(MAX_SHARD_RETRIES_ENV, DEFAULT_MAX_SHARD_RETRIES)


def default_max_worker_deaths(workers: int) -> int:
    """Death budget for one sweep: env var, else ``max(4, 2 * workers)``.

    Past this many reaped workers the pool is considered collapsed and
    the sweep degrades to serial completion instead of respawning.
    """
    return _env_positive_int(MAX_WORKER_DEATHS_ENV, max(4, 2 * workers))


def default_shard_timeout_s() -> float:
    """Lease deadline in seconds: env var, else 300 (``0`` disables)."""
    raw = os.environ.get(SHARD_TIMEOUT_ENV, "").strip()
    if not raw:
        return DEFAULT_SHARD_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{SHARD_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"{SHARD_TIMEOUT_ENV} must be >= 0, got {value:g}")
    return value


class ShardFailed(RuntimeError):
    """A shard failed every worker attempt *and* the serial fallback.

    Carries the shard range, the attempt history and the original
    traceback so the failure is actionable without re-running — the
    typed terminal error of the self-healing layer (a sweep either
    completes, returns an honest budget-truncated prefix, or raises
    this; it never hangs and never loses the failure context).
    """

    def __init__(
        self,
        lo: int,
        hi: int,
        attempts: int,
        errors: list[tuple[str, str]] | None = None,
    ):
        self.lo = int(lo)
        self.hi = int(hi)
        self.attempts = int(attempts)
        self.errors = list(errors or [])
        last = self.errors[-1][0] if self.errors else "worker died"
        super().__init__(
            f"shard [{lo}, {hi}) failed {attempts} attempt(s) and the "
            f"serial fallback; last error: {last}"
        )

    @property
    def traceback_text(self) -> str:
        """The original (first) failure's traceback, if one was captured."""
        for _, tb in self.errors:
            if tb:
                return tb
        return ""


@dataclass
class ShardLease:
    """One shard's dispatch state: holder, attempts, deadline, history."""

    sid: int
    lo: int
    hi: int
    shm_name: str | None = None  #: created on first dispatch, then reused
    pid: int | None = None  #: current holder (None until its ``start`` ack)
    attempt: int = 0  #: dispatches so far (includes the in-flight one)
    failures: int = 0  #: failed attempts (kernel error or holder death)
    tried_pids: set = field(default_factory=set)  #: workers that failed it
    started_at: float | None = None
    deadline: float | None = None
    errors: list = field(default_factory=list)  #: (exc_repr, traceback) per failure

    def start(self, pid: int, now: float, timeout_s: float) -> None:
        """Stamp the holder and (re)arm the stuck-worker deadline."""
        self.pid = int(pid)
        self.started_at = now
        self.deadline = now + timeout_s if timeout_s > 0 else None

    def fail(self, pid: int | None, error: str, tb: str = "") -> None:
        """Record one failed attempt and release the holder."""
        self.failures += 1
        if pid is not None:
            self.tried_pids.add(int(pid))
        self.errors.append((error, tb))
        self.pid = None
        self.started_at = None
        self.deadline = None

    def span_attrs(self) -> dict:
        """Lease fields worth annotating on obs spans/events."""
        return {
            "sid": self.sid,
            "lo": self.lo,
            "hi": self.hi,
            "attempt": self.attempt,
            "failures": self.failures,
            "pid": self.pid,
        }


@dataclass
class WorkerHandle:
    """One pool worker: its process, private task queue, and identity.

    ``wid`` is a monotonically increasing spawn index — replacement
    workers get fresh wids, which is what lets a fault plan target "the
    first worker" (``perf.worker.w0.*``) without also hitting the
    respawned replacement.
    """

    wid: int
    process: object  #: multiprocessing.Process
    task_q: object  #: per-worker SimpleQueue (parent -> this worker only)
    sentinel_sent: bool = False

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def is_alive(self) -> bool:
        return self.process.is_alive()


class Supervisor:
    """Owns the worker pool: assignment, liveness, reaping, respawn.

    ``spawn`` is a callable ``spawn(wid) -> WorkerHandle`` returning a
    *started* worker.  The supervisor never touches shared memory or the
    budget — it only knows which worker holds which shard and whether
    each worker is alive.
    """

    def __init__(
        self,
        spawn,
        *,
        workers: int,
        max_worker_deaths: int,
        lease_timeout_s: float = DEFAULT_SHARD_TIMEOUT_S,
        clock=time.monotonic,
        kill=os.kill,
    ):
        self._spawn = spawn
        self.target = int(workers)
        self.max_worker_deaths = int(max_worker_deaths)
        self.lease_timeout_s = float(lease_timeout_s)
        self._clock = clock
        self._kill = kill
        self.handles: list[WorkerHandle] = []
        self._owner: dict[int, WorkerHandle] = {}  # sid -> holding worker
        self._next_wid = 0
        self.deaths = 0
        self.respawns = 0

    # -- pool lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn the initial pool of ``target`` workers."""
        for _ in range(self.target):
            self._spawn_one()

    def _spawn_one(self) -> WorkerHandle:
        handle = self._spawn(self._next_wid)
        self._next_wid += 1
        self.handles.append(handle)
        return handle

    @property
    def collapsed(self) -> bool:
        """True once the death budget is exhausted (stop respawning)."""
        return self.deaths > self.max_worker_deaths

    def live_handles(self) -> list[WorkerHandle]:
        return [h for h in self.handles if h.is_alive()]

    # -- lease assignment ------------------------------------------------------

    def load(self, handle: WorkerHandle) -> int:
        """Shards currently owned by ``handle``."""
        return sum(1 for h in self._owner.values() if h is handle)

    def has_capacity(self, depth: int = 2) -> bool:
        """True when some live worker can take another shard (< depth)."""
        return any(self.load(h) < depth for h in self.live_handles())

    def assign(self, lease: ShardLease, task, depth: int = 2) -> bool:
        """Queue ``task`` on the best live worker; False if none can take it.

        Best = fewest owned shards, preferring workers that have not
        already failed this shard (``lease.tried_pids``) so retries land
        on *distinct* workers whenever the pool allows it.
        """
        candidates = [h for h in self.live_handles() if self.load(h) < depth]
        if not candidates:
            return False
        candidates.sort(
            key=lambda h: (h.pid in lease.tried_pids, self.load(h), h.wid)
        )
        handle = candidates[0]
        lease.attempt += 1
        self._owner[lease.sid] = handle
        handle.task_q.put(task)
        return True

    def note_started(self, lease: ShardLease, pid: int) -> None:
        """A worker acknowledged picking the shard up: arm its deadline."""
        lease.start(pid, self._clock(), self.lease_timeout_s)

    def release(self, sid: int) -> None:
        """The shard reached a terminal message (done/error): drop ownership."""
        self._owner.pop(sid, None)

    def owner_pid(self, sid: int) -> int | None:
        handle = self._owner.get(sid)
        return handle.pid if handle is not None else None

    def outstanding(self) -> list[int]:
        """Shard ids currently owned by live workers."""
        return [
            sid for sid, h in self._owner.items() if h.is_alive()
        ]

    # -- supervision -----------------------------------------------------------

    def kill_stuck(self, leases: dict[int, ShardLease]) -> list[int]:
        """SIGKILL workers holding a lease past its deadline.

        Returns the wids killed; the dead workers are collected by the
        next :meth:`reap` pass, which re-queues their shards.
        """
        now = self._clock()
        killed: list[int] = []
        for sid, handle in list(self._owner.items()):
            lease = leases.get(sid)
            if lease is None or lease.deadline is None:
                continue
            if now < lease.deadline or not handle.is_alive():
                continue
            try:
                self._kill(handle.process.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                pass  # already gone — reap will pick it up
            killed.append(handle.wid)
        return killed

    def reap(self) -> list[tuple[int, bool]]:
        """Collect dead workers; return their orphaned ``(sid, started)``.

        ``started`` is True when the worker had acknowledged the shard
        (it died mid-compute — that counts as a failed attempt); False
        when the shard was still queued behind it (re-dispatch without
        blame).  Each reaped worker increments the death count toward
        the budget.
        """
        orphans: list[tuple[int, bool]] = []
        for handle in list(self.handles):
            if handle.is_alive() or handle.sentinel_sent:
                continue
            handle.process.join(timeout=0)
            self.handles.remove(handle)
            self.deaths += 1
            # Tasks still buffered in its private queue were never started —
            # drain first so assigned-but-unconsumed shards are reported
            # exactly once, blamelessly.
            drained = {t[0] for t in self._drain_queue(handle.task_q)}
            for sid, h in list(self._owner.items()):
                if h is handle:
                    del self._owner[sid]
                    if sid not in drained:
                        orphans.append((sid, True))
            for sid in sorted(drained):
                orphans.append((sid, False))
        return orphans

    @staticmethod
    def _drain_queue(task_q) -> list:
        tasks = []
        try:
            while not task_q.empty():
                tasks.append(task_q.get())
        except (OSError, EOFError):  # pragma: no cover - queue torn by death
            pass
        return [t for t in tasks if t is not None]

    def maybe_respawn(self, wanted: int) -> int:
        """Top the pool back up to ``min(target, wanted)`` live workers.

        Respawning stops once the death budget is exhausted; returns the
        number of workers spawned.
        """
        if self.collapsed:
            return 0
        spawned = 0
        while len(self.live_handles()) < min(self.target, wanted):
            self._spawn_one()
            self.respawns += 1
            spawned += 1
        return spawned

    # -- shutdown --------------------------------------------------------------

    def shutdown(self, grace_s: float = 5.0) -> None:
        """Wind the pool down: sentinels, a bounded join, then SIGKILL.

        Safe against stuck workers — anything still alive after the
        grace period is killed outright (its metrics snapshot is lost,
        which the caller accounts for before calling this).
        """
        for handle in self.handles:
            if handle.is_alive() and not handle.sentinel_sent:
                try:
                    handle.task_q.put(None)
                    handle.sentinel_sent = True
                except (OSError, ValueError):  # pragma: no cover - torn pipe
                    pass
        for handle in self.handles:
            handle.process.join(timeout=grace_s)
        for handle in self.handles:
            if handle.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
        self._owner.clear()
